(** Design-space exploration over the composer's knobs.

    The paper observes that Spatial's DSE frequently proposed points that
    failed synthesis; Beethoven's elaboration is cheap and its floorplanner
    is the fit oracle, so a sweep over core counts (or any discrete knob)
    can reject infeasible points before any tool run. This module provides
    that: enumerate candidates, check fit, score with a user metric, and
    report the frontier.

    This is also the {e offline pre-filter} of the closed-loop tuner
    ([Tune]): before spending a live serving phase on a candidate, the
    tuner calls {!fit} through a shared {!Elaborate.Cache} — an
    infeasible knob combination is rejected by the elaboration-time DRC
    (floorplan, scratchpad capacity, timing budget) at cache-hit cost for
    every system the candidate left untouched. *)

type point = {
  pt_cores : int;
  pt_fits : bool;
  pt_peak_utilization : float;  (** worst per-SLR utilization when it fits *)
  pt_metric : float option;  (** user score (higher is better) *)
}

val fit :
  ?cache:Elaborate.Cache.cache ->
  Config.t ->
  Platform.Device.t ->
  (float, string) result
(** Full-DRC fit check: elaborate the config (through [cache] when
    given) and return [Ok peak_slr_utilization], or [Error reason] when
    any design rule at error severity rejects it. This is the oracle the
    tuner uses to pre-filter candidates. *)

val sweep_cores :
  config_of:(n_cores:int -> Config.t) ->
  ?max_cores:int ->
  ?metric:(n_cores:int -> float) ->
  ?cache:Elaborate.Cache.cache ->
  Platform.Device.t ->
  point list
(** Evaluate 1..[max_cores] (default 48). [metric] is only invoked for
    points that fit. Without [cache] the fit oracle is the historical
    floorplan-only placement check; with [cache] each point runs the full
    {!fit} through the elaboration cache, so repeated sweeps (and the
    tuner's follow-on evaluations of the same systems) reuse the
    per-system kernel analyses. *)

val best : point list -> point option
(** Highest metric among fitting points (falls back to the largest
    fitting core count when no metric was supplied). *)

val render : point list -> string
