(* Bridge between an RTL core (Hw.Sim, compiled backend by default) and
   the transaction-level SoC: the composer-generated glue a Beethoven
   user never writes by hand. *)

let bits_of_mem soc addr n_bytes =
  Bits.concat_list
    (List.init n_bytes (fun i ->
         Bits.of_int ~width:8 (Soc.read_u8 soc (addr + (n_bytes - 1 - i)))))

let mem_of_bits soc addr b =
  let n_bytes = Bits.width b / 8 in
  for i = 0 to n_bytes - 1 do
    Soc.write_u8 soc (addr + i)
      (Bits.to_int (Bits.slice b ~hi:((8 * i) + 7) ~lo:(8 * i)))
  done

type read_bridge = {
  rb_chan : Config.read_channel;
  rb_reader : Soc.Reader.r;
  rb_items : int Queue.t; (* offsets whose data has arrived *)
  mutable rb_base : int; (* base address of the active stream *)
  mutable rb_presented : bool; (* data_valid currently asserted *)
  mutable rb_active : bool; (* a stream is in flight *)
}

type write_bridge = {
  wb_chan : Config.write_channel;
  wb_writer : Soc.Writer.w;
  mutable wb_base : int;
  mutable wb_offset : int;
  mutable wb_open : bool; (* a transaction is open *)
  mutable wb_done : bool; (* last opened txn fully responded *)
  mutable wb_unacked : int; (* pushes not yet accepted by the writer *)
}

type spad_bridge = {
  sb_name : string;
  sb_spad : Soc.Scratchpad.sp;
  sb_row_bits : int;
}

type core_state = {
  sim : Hw.Sim.t;
  reads : read_bridge list;
  writes : write_bridge list;
  spads : spad_bridge list;
}

let input_exists circuit name =
  List.mem_assoc name (Hw.Circuit.inputs circuit)

let output_exists circuit name =
  List.mem_assoc name (Hw.Circuit.outputs circuit)

let require_port circuit ~dir name =
  let ok =
    match dir with
    | `In -> input_exists circuit name
    | `Out -> output_exists circuit name
  in
  if not ok then
    failwith
      (Printf.sprintf "Rtl_core: circuit %s is missing %s port %S"
         (Hw.Circuit.name circuit)
         (match dir with `In -> "input" | `Out -> "output")
         name)

(* Outputs are mandatory (the fabric samples them); unconsumed inputs are
   constant-folded out of the user's netlist and simply aren't driven. *)
let validate circuit (sys : Config.system) =
  List.iter (require_port circuit ~dir:`Out)
    [ "req_ready"; "resp_valid"; "resp_data" ];
  List.iter
    (fun (rc : Config.read_channel) ->
      let c = rc.Config.rc_name in
      List.iter (require_port circuit ~dir:`Out)
        [ c ^ "_req_valid"; c ^ "_req_addr"; c ^ "_req_len"; c ^ "_data_ready" ])
    sys.Config.read_channels;
  List.iter
    (fun (wc : Config.write_channel) ->
      let c = wc.Config.wc_name in
      List.iter (require_port circuit ~dir:`Out)
        [
          c ^ "_req_valid"; c ^ "_req_addr"; c ^ "_req_len"; c ^ "_data_valid";
          c ^ "_data";
        ])
    sys.Config.write_channels

(* one simulator per (soc, system, core) *)
let instances : (int * string * int, core_state) Hashtbl.t = Hashtbl.create 8

let state_of ?backend ~build (ctx : Soc.ctx) =
  let key =
    (Soc.uid ctx.Soc.soc, ctx.Soc.system.Config.sys_name, ctx.Soc.core_id)
  in
  match Hashtbl.find_opt instances key with
  | Some st -> st
  | None ->
      let circuit = build () in
      validate circuit ctx.Soc.system;
      let sim = Hw.Sim.create ?backend circuit in
      let reads =
        List.map
          (fun rc ->
            {
              rb_chan = rc;
              rb_reader = Soc.reader ctx rc.Config.rc_name;
              rb_items = Queue.create ();
              rb_base = 0;
              rb_presented = false;
              rb_active = false;
            })
          ctx.Soc.system.Config.read_channels
      in
      let writes =
        List.map
          (fun wc ->
            {
              wb_chan = wc;
              wb_writer = Soc.writer ctx wc.Config.wc_name;
              wb_base = 0;
              wb_offset = 0;
              wb_open = false;
              wb_done = true;
              wb_unacked = 0;
            })
          ctx.Soc.system.Config.write_channels
      in
      (* scratchpads with RTL read ports: <name>_rd_addr / <name>_rd_data *)
      let spads =
        List.filter_map
          (fun (sp : Config.scratchpad) ->
            let nm = sp.Config.sp_name in
            if output_exists circuit (nm ^ "_rd_addr") then begin
              if not (input_exists circuit (nm ^ "_rd_data")) then
                failwith
                  (Printf.sprintf
                     "Rtl_core: %s_rd_addr without a %s_rd_data input" nm nm);
              Some
                {
                  sb_name = nm;
                  sb_spad = Soc.scratchpad ctx nm;
                  sb_row_bits = 8 * ((sp.Config.sp_data_bits + 7) / 8);
                }
            end
            else None)
          ctx.Soc.system.Config.scratchpads
      in
      let st = { sim; reads; writes; spads } in
      Hashtbl.add instances key st;
      st

let high sim name = Hw.Sim.output_int sim name = 1

let behavior ?backend ~build () : Soc.behavior =
 fun ctx beats ~respond ->
  let st = state_of ?backend ~build ctx in
  let sim = st.sim in
  let soc = ctx.Soc.soc in
  let pending_beats = ref beats in
  let resp_data = ref 0L in
  let responded = ref false in
  let budget = ref 10_000_000 in
  let set name v = try Hw.Sim.set_input sim name v with Not_found -> () in
  let set_int name v =
    try Hw.Sim.set_input_int sim name v with Not_found -> ()
  in
  let rec cycle () =
    decr budget;
    if !budget <= 0 then
      failwith "Rtl_core: core never responded (cycle budget exhausted)";
    (* -- drive inputs for this cycle -- *)
    (match !pending_beats with
    | beat :: _ ->
        set_int "req_valid" 1;
        set_int "req_funct" beat.Rocc.funct;
        set "req_p1" (Bits.of_int64 ~width:64 beat.Rocc.payload1);
        set "req_p2" (Bits.of_int64 ~width:64 beat.Rocc.payload2)
    | [] -> set_int "req_valid" 0);
    set_int "resp_ready" 1;
    List.iter
      (fun rb ->
        let c = rb.rb_chan.Config.rc_name in
        (* request port accepted only while the Reader is idle; streams
           are serialized per channel like the hardware Reader *)
        set_int (c ^ "_req_ready") (if rb.rb_active then 0 else 1);
        match Queue.peek_opt rb.rb_items with
        | Some offset ->
            set_int (c ^ "_data_valid") 1;
            set (c ^ "_data")
              (bits_of_mem soc (rb.rb_base + offset)
                 rb.rb_chan.Config.rc_data_bytes);
            rb.rb_presented <- true
        | None ->
            set_int (c ^ "_data_valid") 0;
            rb.rb_presented <- false)
      st.reads;
    List.iter
      (fun wb ->
        let c = wb.wb_chan.Config.wc_name in
        set_int (c ^ "_req_ready") (if wb.wb_open then 0 else 1);
        set_int (c ^ "_data_ready")
          (if wb.wb_open && wb.wb_unacked < 4 then 1 else 0))
      st.writes;
    Hw.Sim.settle sim;
    (* scratchpad read ports are asynchronous: feed each settled address
       back as data and settle again (addresses must not combinationally
       depend on the returned data) *)
    if st.spads <> [] then begin
      List.iter
        (fun sb ->
          let addr =
            Bits.to_int_trunc (Hw.Sim.output sim (sb.sb_name ^ "_rd_addr"))
          in
          let depth = Soc.Scratchpad.depth sb.sb_spad in
          let row = if addr < depth then addr else 0 in
          let bytes = Soc.Scratchpad.get sb.sb_spad row in
          let bits =
            Bits.concat_list
              (List.init (Bytes.length bytes) (fun i ->
                   Bits.of_int ~width:8
                     (Char.code (Bytes.get bytes (Bytes.length bytes - 1 - i)))))
          in
          set (sb.sb_name ^ "_rd_data") (Bits.resize bits sb.sb_row_bits))
        st.spads;
      Hw.Sim.settle sim
    end;
    (* -- sample handshakes that fire at this edge -- *)
    let req_fired = high sim "req_ready" && !pending_beats <> [] in
    List.iter
      (fun rb ->
        let c = rb.rb_chan.Config.rc_name in
        if (not rb.rb_active) && high sim (c ^ "_req_valid") then begin
          let addr =
            Bits.to_int_trunc (Hw.Sim.output sim (c ^ "_req_addr"))
          in
          let len =
            Bits.to_int_trunc (Hw.Sim.output sim (c ^ "_req_len"))
          in
          rb.rb_base <- addr;
          rb.rb_active <- true;
          Soc.Reader.stream rb.rb_reader ~addr ~bytes:len
            ~on_item:(fun ~offset -> Queue.push offset rb.rb_items)
            ~on_done:(fun () -> rb.rb_active <- false)
            ()
        end;
        if rb.rb_presented && high sim (c ^ "_data_ready") then
          ignore (Queue.pop rb.rb_items))
      st.reads;
    List.iter
      (fun wb ->
        let c = wb.wb_chan.Config.wc_name in
        if (not wb.wb_open) && high sim (c ^ "_req_valid") then begin
          let addr =
            Bits.to_int_trunc (Hw.Sim.output sim (c ^ "_req_addr"))
          in
          let len =
            Bits.to_int_trunc (Hw.Sim.output sim (c ^ "_req_len"))
          in
          wb.wb_open <- true;
          wb.wb_done <- false;
          wb.wb_base <- addr;
          wb.wb_offset <- 0;
          Soc.Writer.begin_txn wb.wb_writer ~addr ~bytes:len
            ~on_done:(fun () ->
              wb.wb_open <- false;
              wb.wb_done <- true)
        end
        else if
          wb.wb_open && wb.wb_unacked < 4 && high sim (c ^ "_data_valid")
        then begin
          let data = Hw.Sim.output sim (c ^ "_data") in
          mem_of_bits soc (wb.wb_base + wb.wb_offset) data;
          wb.wb_offset <- wb.wb_offset + (Bits.width data / 8);
          wb.wb_unacked <- wb.wb_unacked + 1;
          Soc.Writer.push wb.wb_writer
            ~on_accept:(fun () -> wb.wb_unacked <- wb.wb_unacked - 1)
            ()
        end)
      st.writes;
    if high sim "resp_valid" && not !responded then begin
      resp_data := Bits.to_int64 (Hw.Sim.output sim "resp_data");
      responded := true
    end;
    Hw.Sim.step sim;
    if req_fired then pending_beats := List.tl !pending_beats;
    (* -- done? -- *)
    let writes_settled = List.for_all (fun wb -> wb.wb_done) st.writes in
    if !responded && writes_settled then respond !resp_data
    else Desim.Engine.schedule ctx.Soc.engine ~delay:ctx.Soc.clock_ps cycle
  in
  cycle ()
