(** Static elaboration: configuration + platform → the generated system.

    Produces everything Beethoven hands to the downstream tool flow —
    floorplan and constraints, the command and memory interconnect
    structure, the resource report (the Table II breakdown), C++ host
    bindings, Verilog for RTL-DSL kernels, and ASIC SRAM compilation plans
    when the platform is an ASIC target. *)

type t = {
  config : Config.t;
  platform : Platform.Device.t;
  diagnostics : Hw.Diag.t list;
      (** everything {!Check.run} reported (errors only ever appear here
          when elaboration was forced with [~checks:false]) *)
  floorplan : Floorplan.t;
  cmd_noc : Noc.t;
  mem_noc : Noc.t;
  mem_endpoints : ((string * int * string) * int) list;
      (** (system, core, channel-name) → memory NoC endpoint id *)
  interconnect : Platform.Resources.t;
  frontend : Platform.Resources.t;
  beethoven_total : Platform.Resources.t;  (** everything except the shell *)
  grand_total : Platform.Resources.t;  (** including the shell *)
  sram_plans : (string * Platform.Sram.plan) list;  (** ASIC targets *)
  sta : (string * Hw.Sta.report) list;
      (** per-system static timing reports for RTL-DSL kernels
          ({!Check.sta}) *)
  kernel_stats : (string * (string * int) list) list;
      (** per-system {!Hw.Circuit.stats} of RTL-DSL kernels *)
}

val elaborate : ?checks:bool -> Config.t -> Platform.Device.t -> t
(** Runs {!Check.run} first (unless [~checks:false]) and raises [Failure]
    with the rendered error diagnostics when any rule at error severity
    fires — a configuration that cannot map to the platform never reaches
    the downstream flow. Warnings and infos are retained in
    [diagnostics]. *)

(** Content-hashed elaboration cache.

    The expensive slice of elaboration is per-system and
    placement-independent: linting the kernel netlist, timing it
    ({!Hw.Sta}) and collecting its circuit statistics
    ({!Check.analyze_kernel}). The cache keys that slice by a content
    hash of the per-system [Config] record — every channel/scratchpad/
    command/core-count knob plus a digest of the kernel circuit's
    emitted Verilog — so a one-knob config delta re-analyzes only the
    system it touched while every untouched system is a hit. Global
    artifacts (floorplan, NoCs, resource totals) are always rebuilt:
    they depend on the whole config and are cheap.

    {!elaborate} through a cache is byte-equivalent to a fresh
    {!Elaborate.elaborate}: identical diagnostics, STA reports and
    circuit stats (the qcheck property in [test/test_tune.ml]). The
    tuner ({!Tune}) and the DSE pre-filter ({!Dse}) share one cache so a
    search over knob deltas pays for each distinct system once. *)
module Cache : sig
  type cache

  val create : unit -> cache

  val system_key : Config.system -> string
  (** Content hash (16 hex digits) of the per-system config slice. Equal
      keys imply equal {!Check.analyze_kernel} results. *)

  val elaborate : ?checks:bool -> cache -> Config.t -> Platform.Device.t -> t
  (** Like {!Elaborate.elaborate}, but per-system kernel analyses are
      looked up by {!system_key} (plus the platform name) and memoized.
      Raises exactly when the fresh elaboration would. *)

  val hits : cache -> int
  val misses : cache -> int
  val entries : cache -> int

  val last_lookups : cache -> (string * bool) list
  (** Per-system (name, was-hit) of the most recent {!elaborate} call, in
      config order — the evidence the cache hit-rate regression test
      checks. *)

  val stats_line : cache -> string
end

val cmd_endpoint : t -> system:string -> core:int -> int
val mem_endpoint : t -> system:string -> core:int -> channel:string -> int

val resource_table : t -> string
(** Rendered utilization table in the shape of Table II. *)

val cpp_header : t -> string
val cpp_stubs : t -> string
val constraints : t -> string
val verilog : t -> (string * string) list
(** (system name, Verilog source) for systems whose kernel is an RTL-DSL
    circuit. *)

val summary : t -> string
