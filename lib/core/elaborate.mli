(** Static elaboration: configuration + platform → the generated system.

    Produces everything Beethoven hands to the downstream tool flow —
    floorplan and constraints, the command and memory interconnect
    structure, the resource report (the Table II breakdown), C++ host
    bindings, Verilog for RTL-DSL kernels, and ASIC SRAM compilation plans
    when the platform is an ASIC target. *)

type t = {
  config : Config.t;
  platform : Platform.Device.t;
  diagnostics : Hw.Diag.t list;
      (** everything {!Check.run} reported (errors only ever appear here
          when elaboration was forced with [~checks:false]) *)
  floorplan : Floorplan.t;
  cmd_noc : Noc.t;
  mem_noc : Noc.t;
  mem_endpoints : ((string * int * string) * int) list;
      (** (system, core, channel-name) → memory NoC endpoint id *)
  interconnect : Platform.Resources.t;
  frontend : Platform.Resources.t;
  beethoven_total : Platform.Resources.t;  (** everything except the shell *)
  grand_total : Platform.Resources.t;  (** including the shell *)
  sram_plans : (string * Platform.Sram.plan) list;  (** ASIC targets *)
  sta : (string * Hw.Sta.report) list;
      (** per-system static timing reports for RTL-DSL kernels
          ({!Check.sta}) *)
}

val elaborate : ?checks:bool -> Config.t -> Platform.Device.t -> t
(** Runs {!Check.run} first (unless [~checks:false]) and raises [Failure]
    with the rendered error diagnostics when any rule at error severity
    fires — a configuration that cannot map to the platform never reaches
    the downstream flow. Warnings and infos are retained in
    [diagnostics]. *)

val cmd_endpoint : t -> system:string -> core:int -> int
val mem_endpoint : t -> system:string -> core:int -> channel:string -> int

val resource_table : t -> string
(** Rendered utilization table in the shape of Table II. *)

val cpp_header : t -> string
val cpp_stubs : t -> string
val constraints : t -> string
val verilog : t -> (string * string) list
(** (system name, Verilog source) for systems whose kernel is an RTL-DSL
    circuit. *)

val summary : t -> string
