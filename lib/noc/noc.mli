(** SLR-aware tree interconnect generator.

    Beethoven's on-chip networks (for commands, memory traffic, and
    intra-accelerator communication) are trees of buffers: one subtree per
    SLR containing the endpoints placed there, subtree roots joined to the
    network root across die-crossing links with extra pipelining. Fanout
    and per-hop buffering are the platform-tunable knobs the paper
    describes. The same structure yields both a latency model (used by the
    SoC simulation) and a buffer count (used by the resource estimator —
    the "Interconnect" row of Table II). *)

module Params : sig
  type t = {
    max_fanout : int;  (** max children per tree node *)
    node_latency_cycles : int;  (** pipeline stages per buffer node *)
    slr_crossing_latency_cycles : int;  (** per die crossing *)
    clock_ps : int;  (** fabric clock period *)
  }

  val default : clock_ps:int -> t
  (** fanout 4, 1 cycle per node, 4 cycles per SLR crossing. *)
end

type endpoint = { ep_id : int; ep_slr : int }
type t

val build : Params.t -> root_slr:int -> endpoints:endpoint list -> t
(** Raises [Invalid_argument] on duplicate endpoint ids. An empty endpoint
    list is legal (a design with no memory channels has an empty memory
    fabric). *)

(** {1 Structure} *)

val n_endpoints : t -> int
val n_buffers : t -> int
(** Internal tree nodes, including SLR-crossing pipeline buffers. *)

val n_slr_crossings : t -> int
val depth_of : t -> ep_id:int -> int
(** Hops (tree nodes traversed) from the root to the endpoint. *)

val latency_cycles : t -> ep_id:int -> int
(** One-way latency in fabric cycles. *)

val latency_ps : t -> ep_id:int -> int
val describe : t -> string
(** Human-readable topology summary. *)

(** {1 Messaging} *)

type delivery =
  | Delivered
  | Dropped  (** a fault swallowed the message; the callback never fires *)
  | Delayed of int  (** delivered, but a fault added this many ps *)

val send :
  t -> Desim.Engine.t -> ep_id:int -> ?payload_beats:int ->
  ?tracer:Trace.t -> ?label:string -> ?span:int ->
  ?fault:Fault.Injector.t * Fault.Class.t ->
  (unit -> unit) -> delivery
(** Deliver a message from the root to [ep_id] (or vice versa — the tree is
    symmetric): the callback fires after the one-way latency plus one cycle
    per extra payload beat. With [fault], the injector may drop the message
    (using the given drop class — the callback then never fires, and the
    caller is told via [Dropped] so it can account for the loss) or delay
    it by a bounded random amount. Delayed messages never overtake earlier
    ones to the same endpoint: the tree preserves per-route ordering.

    With [tracer], the hop records a span from send to arrival (parented
    on [span], lane ["noc <label>"]) and feeds the per-label hop-latency
    series and histogram; drops become instants. *)

val messages_sent : t -> int
val messages_dropped : t -> int
val messages_delayed : t -> int
