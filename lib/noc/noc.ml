module Params = struct
  type t = {
    max_fanout : int;
    node_latency_cycles : int;
    slr_crossing_latency_cycles : int;
    clock_ps : int;
  }

  let default ~clock_ps =
    {
      max_fanout = 4;
      node_latency_cycles = 1;
      slr_crossing_latency_cycles = 4;
      clock_ps;
    }
end

type endpoint = { ep_id : int; ep_slr : int }

type t = {
  prm : Params.t;
  root_slr : int;
  endpoints : endpoint list;
  (* ep_id -> (tree depth within its SLR subtree, slr distance to root) *)
  routes : (int, int * int) Hashtbl.t;
  n_buffers : int;
  n_crossings : int;
  mutable messages : int;
  mutable drops : int;
  mutable delays : int;
  (* per-endpoint earliest-next-arrival clamp: the tree preserves ordering
     along a route, so a delayed message holds back the ones behind it *)
  arrival_floor : (int, int) Hashtbl.t;
}

(* Depth of a balanced tree with the given fanout over [n] leaves, and the
   number of internal nodes it takes. A single leaf hangs directly off the
   subtree root (depth 1 node). *)
let tree_shape ~fanout n =
  let rec go n_leaves depth nodes =
    if n_leaves <= 1 then (depth, nodes)
    else
      let groups = ((n_leaves - 1) / fanout) + 1 in
      go groups (depth + 1) (nodes + groups)
  in
  go n 0 0

let build prm ~root_slr ~endpoints =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun ep ->
      if Hashtbl.mem seen ep.ep_id then
        invalid_arg "Noc.build: duplicate endpoint id";
      Hashtbl.add seen ep.ep_id ())
    endpoints;
  (* group endpoints by SLR *)
  let slrs = Hashtbl.create 4 in
  List.iter
    (fun ep ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt slrs ep.ep_slr) in
      Hashtbl.replace slrs ep.ep_slr (ep :: cur))
    endpoints;
  let routes = Hashtbl.create 16 in
  let n_buffers = ref 0 in
  let n_crossings = ref 0 in
  Hashtbl.iter
    (fun slr eps ->
      let n = List.length eps in
      let depth, nodes = tree_shape ~fanout:prm.Params.max_fanout n in
      (* subtree root itself is one buffer node even for a single leaf *)
      let depth = max depth 1 in
      let nodes = max nodes 1 in
      n_buffers := !n_buffers + nodes;
      let dist = abs (slr - root_slr) in
      n_crossings := !n_crossings + dist;
      (* a pipeline buffer per crossing *)
      n_buffers := !n_buffers + dist;
      List.iter (fun ep -> Hashtbl.add routes ep.ep_id (depth, dist)) eps)
    slrs;
  {
    prm;
    root_slr;
    endpoints;
    routes;
    n_buffers = !n_buffers;
    n_crossings = !n_crossings;
    messages = 0;
    drops = 0;
    delays = 0;
    arrival_floor = Hashtbl.create 16;
  }

let n_endpoints t = List.length t.endpoints
let n_buffers t = t.n_buffers
let n_slr_crossings t = t.n_crossings

let route t ep_id =
  match Hashtbl.find_opt t.routes ep_id with
  | Some r -> r
  | None -> invalid_arg "Noc: unknown endpoint"

let depth_of t ~ep_id =
  let depth, dist = route t ep_id in
  depth + dist

let latency_cycles t ~ep_id =
  let depth, dist = route t ep_id in
  (depth * t.prm.Params.node_latency_cycles)
  + (dist * t.prm.Params.slr_crossing_latency_cycles)

let latency_ps t ~ep_id = latency_cycles t ~ep_id * t.prm.Params.clock_ps

let describe t =
  let by_slr = Hashtbl.create 4 in
  List.iter
    (fun ep ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt by_slr ep.ep_slr) in
      Hashtbl.replace by_slr ep.ep_slr (cur + 1))
    t.endpoints;
  let slr_lines =
    Hashtbl.fold (fun slr n acc -> (slr, n) :: acc) by_slr []
    |> List.sort compare
    |> List.map (fun (slr, n) ->
           Printf.sprintf "  SLR%d: %d endpoint%s%s" slr n
             (if n = 1 then "" else "s")
             (if slr = t.root_slr then " (root)" else ""))
  in
  String.concat "\n"
    (Printf.sprintf "tree NoC: %d endpoints, %d buffers, %d SLR crossings"
       (n_endpoints t) t.n_buffers t.n_crossings
    :: slr_lines)

type delivery = Delivered | Dropped | Delayed of int

(* The hop's arrival time is known synchronously, so the trace span is
   opened and closed here; drops become instants (no arrival exists). *)
let trace_hop t ?tracer ?(label = "noc") ?span ~engine ~ep_id ~now ~arrival
    delivery =
  match tracer with
  | None -> ()
  | Some tr ->
      ignore engine;
      let track = "noc " ^ label in
      (match delivery with
      | Dropped ->
          Trace.instant tr ~now ?parent:span ~track ~cat:"noc"
            ~name:(Printf.sprintf "drop ep%d" ep_id)
            ()
      | Delivered | Delayed _ ->
          let sp =
            Trace.begin_span tr ~now ?parent:span ~track ~cat:"noc"
              ~name:(Printf.sprintf "hop ep%d" ep_id)
              ()
          in
          (match delivery with
          | Delayed extra -> Trace.add_arg tr sp "delay_ps" (Trace.Int extra)
          | _ -> ());
          Trace.end_span tr ~now:arrival sp;
          let lat = float_of_int (arrival - now) in
          Trace.observe tr (Printf.sprintf "noc.%s.hop_ps" label) lat;
          Trace.observe_hist tr
            (Printf.sprintf "noc.%s.hop_ps" label)
            ~bucket_width:(float_of_int t.prm.Params.clock_ps)
            lat)

let send t engine ~ep_id ?(payload_beats = 1) ?tracer ?label ?span ?fault k =
  if payload_beats < 1 then invalid_arg "Noc.send: payload_beats";
  t.messages <- t.messages + 1;
  let cycles = latency_cycles t ~ep_id + (payload_beats - 1) in
  let base = cycles * t.prm.Params.clock_ps in
  let now = Desim.Engine.now engine in
  match fault with
  | None ->
      Desim.Engine.schedule engine ~delay:base k;
      trace_hop t ?tracer ?label ?span ~engine ~ep_id ~now
        ~arrival:(now + base) Delivered;
      Delivered
  | Some (inj, drop_cls) ->
      if Fault.Injector.decide inj drop_cls then begin
        (* the message vanishes in the fabric: the callback never fires *)
        t.drops <- t.drops + 1;
        trace_hop t ?tracer ?label ?span ~engine ~ep_id ~now ~arrival:now
          Dropped;
        Dropped
      end
      else begin
        let extra =
          if Fault.Injector.decide inj Fault.Class.Noc_delay then
            Fault.Injector.draw_delay_ps inj
          else 0
        in
        let arrival = now + base + extra in
        let floor =
          Option.value ~default:0 (Hashtbl.find_opt t.arrival_floor ep_id)
        in
        (* never reorder behind an earlier (possibly delayed) message on
           the same route *)
        let arrival = max arrival floor in
        Hashtbl.replace t.arrival_floor ep_id arrival;
        Desim.Engine.schedule_at engine ~time:arrival k;
        let delivery =
          if extra > 0 then begin
            t.delays <- t.delays + 1;
            Delayed extra
          end
          else Delivered
        in
        trace_hop t ?tracer ?label ?span ~engine ~ep_id ~now ~arrival delivery;
        delivery
      end

let messages_sent t = t.messages
let messages_dropped t = t.drops
let messages_delayed t = t.delays
