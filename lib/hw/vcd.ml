type watched = {
  w_name : string;
  w_signal : Signal.t;
  w_code : string;
  mutable w_last : Bits.t option;
}

type t = {
  sim : Cyclesim.t;
  watched : watched list;
  buf : Buffer.t;
  mutable time : int;
}

(* VCD identifier codes: printable ASCII 33..126, shortest-first. *)
let code_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ?(timescale_ps = 4000) sim ~signals () =
  let watched =
    List.mapi
      (fun i (name, s) ->
        { w_name = name; w_signal = s; w_code = code_of_index i; w_last = None })
      signals
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date today $end\n";
  Buffer.add_string buf "$version beethoven-ocaml cyclesim $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %d ps $end\n" timescale_ps);
  Buffer.add_string buf "$scope module top $end\n";
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n"
           (Signal.width w.w_signal) w.w_code w.w_name))
    watched;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  { sim; watched; buf; time = 0 }

let emit_value buf w v =
  if Bits.width v = 1 then
    Buffer.add_string buf
      (Printf.sprintf "%s%s\n" (if Bits.bit v 0 then "1" else "0") w.w_code)
  else
    Buffer.add_string buf
      (Printf.sprintf "b%s %s\n" (Bits.to_bin_string v) w.w_code)

let sample t =
  let changes =
    List.filter_map
      (fun w ->
        let v = Cyclesim.peek t.sim w.w_signal in
        match w.w_last with
        | Some last when Bits.equal last v -> None
        | _ ->
            w.w_last <- Some v;
            Some (w, v))
      t.watched
  in
  if changes <> [] then begin
    Buffer.add_string t.buf (Printf.sprintf "#%d\n" t.time);
    List.iter (fun (w, v) -> emit_value t.buf w v) changes
  end;
  t.time <- t.time + 1

let contents t = Buffer.contents t.buf

let write_file t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
