open Signal

type t = {
  start : Signal.t;
  dividend : Signal.t;
  divisor : Signal.t;
  busy : Signal.t;
  done_ : Signal.t;
  quotient : Signal.t;
  remainder : Signal.t;
}

let log2up n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let create ~width () =
  if width < 2 then invalid_arg "Divider.create: width must be >= 2";
  let start = wire 1 in
  let dividend = wire width in
  let divisor = wire width in
  let cbits = log2up (width + 1) + 1 in
  let busy = wire 1 in
  let count = wire cbits in
  (* the partial remainder needs one extra bit: (R << 1) | b < 2*divisor *)
  let rem = wire (width + 1) in
  let quot = wire width in
  let dsr = wire width in
  (* the dividend's bits stream in MSB-first from this shifting copy *)
  let stream = wire width in
  let go = start &: lnot busy in
  let last_step = count ==: of_int ~width:cbits (width - 1) in
  let stepping = busy in
  let shifted = concat [ select rem ~hi:(width - 1) ~lo:0; msb stream ] in
  let ge = shifted >=: uresize dsr (width + 1) in
  let next_rem = mux2 ge (shifted -: uresize dsr (width + 1)) shifted in
  let next_quot = concat [ select quot ~hi:(width - 2) ~lo:0; ge ] in
  assign busy (reg (mux2 go vdd (mux2 (stepping &: last_step) gnd busy)));
  assign count
    (reg
       (mux2 go (zero cbits)
          (mux2 stepping (count +: of_int ~width:cbits 1) count)));
  assign rem (reg (mux2 go (zero (width + 1)) (mux2 stepping next_rem rem)));
  assign quot (reg (mux2 go (zero width) (mux2 stepping next_quot quot)));
  assign dsr (reg (mux2 go divisor dsr));
  assign stream
    (reg (mux2 go dividend (mux2 stepping (sll stream 1) stream)));
  let done_ = reg (stepping &: last_step) in
  {
    start;
    dividend;
    divisor;
    busy;
    done_;
    quotient = quot;
    remainder = select rem ~hi:(width - 1) ~lo:0;
  }
