(** Synchronous FIFO generator.

    The staging queues between A³'s pipeline stages (Fig. 7) are instances
    of this: a ready/valid elastic buffer built from a circular RAM, depth
    a power of two. [create] returns the FIFO's user-facing signals; wire
    the inputs, read the outputs, and hand the whole design to
    {!Circuit.create} as usual. *)

type t = {
  (* inputs the enclosing design must drive *)
  enq_valid : Signal.t;  (** wire: producer offers data *)
  enq_data : Signal.t;  (** wire: data offered *)
  deq_ready : Signal.t;  (** wire: consumer accepts *)
  (* outputs *)
  enq_ready : Signal.t;  (** FIFO can accept this cycle *)
  deq_valid : Signal.t;  (** data available *)
  deq_data : Signal.t;  (** head-of-queue data (valid when deq_valid) *)
  occupancy : Signal.t;  (** current element count *)
}

val create : ?name:string -> depth:int -> width:int -> unit -> t
(** [depth] must be a power of two >= 2. The FIFO registers its storage in
    a {!Signal.Mem} (mapped to BRAM/URAM/SRAM by the composer's memory
    backends when the design is elaborated). Raises [Invalid_argument] on
    a bad depth. *)
