(** Structured diagnostics shared by the netlist linter ({!Lint}) and the
    composer design-rule checker ([Beethoven.Check]).

    A diagnostic carries a stable rule id (e.g. ["comb-loop"],
    ["drc-floorplan"]), a severity, an optional location (a signal
    description, a memory name, a [system.channel] path, …), a message and
    an optional fix hint. Rule ids are the waiver key: tools accept
    [--waive RULE] and a [--Werror]-style strictness knob, both implemented
    here so every front-end behaves identically. *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** stable rule id, the waiver key *)
  severity : severity;
  loc : string option;  (** where: signal / memory / config path *)
  message : string;
  hint : string option;  (** optional suggested fix *)
}

val make :
  ?loc:string -> ?hint:string -> rule:string -> severity:severity -> string -> t

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare_severity : severity -> severity -> int
(** Orders [Error < Warning < Info] (most severe first). *)

val sort : t list -> t list
(** Stable sort by severity (errors first), then rule id. *)

val to_string : t -> string
(** One line: [severity[rule] loc: message], plus an indented hint line
    when a hint is present. *)

val render : t list -> string
(** All diagnostics, one per line, followed by a
    ["N error(s), N warning(s), N info(s)"] summary. Empty string for []. *)

val to_json : t -> string
(** A JSON object; [loc] / [hint] keys are omitted when absent. *)

val render_json : t list -> string
(** [{"diagnostics": [...], "errors": n, "warnings": n, "infos": n}]. *)

val waive : rules:string list -> t list -> t list
(** Drop diagnostics whose rule id appears in [rules]. *)

val promote_warnings : t list -> t list
(** The [--Werror] knob: re-tag every [Warning] as [Error]. *)

val errors : t list -> t list
val has_errors : t list -> bool
val count : t list -> severity -> int

val raise_if_errors : ?what:string -> t list -> unit
(** Raise [Failure] rendering the error-severity diagnostics (prefixed
    with [what]) when any are present; no-op otherwise. *)
