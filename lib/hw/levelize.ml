open Signal

type node = {
  n_slot : int;
  n_signal : Signal.t;
  n_level : int;
  n_deps : int array;
  n_fanout : int;
}

type t = {
  circuit : Circuit.t;
  nodes : node array;
  slices : (int * int) array;  (* per-level (first slot, count) *)
  slot_by_uid : (int, int) Hashtbl.t;
}

let of_circuit c =
  let topo = Circuit.signals_in_topo_order c in
  let n = List.length topo in
  (* levels: dependencies appear before their consumers in topo order *)
  let level_by_uid = Hashtbl.create n in
  List.iter
    (fun s ->
      let lvl =
        List.fold_left
          (fun acc d -> max acc (1 + Hashtbl.find level_by_uid (uid d)))
          0 (Circuit.comb_deps s)
      in
      Hashtbl.add level_by_uid (uid s) lvl)
    topo;
  (* fanout: one count per reference, combinational and sequential *)
  let fanout_by_uid = Hashtbl.create n in
  let load s =
    Hashtbl.replace fanout_by_uid (uid s)
      (1 + Option.value ~default:0 (Hashtbl.find_opt fanout_by_uid (uid s)))
  in
  List.iter
    (fun s ->
      List.iter load (Circuit.comb_deps s);
      List.iter load (Circuit.seq_deps s))
    topo;
  List.iter
    (fun m ->
      List.iter
        (fun wp ->
          load wp.wp_enable;
          load wp.wp_addr;
          load wp.wp_data)
        (mem_write_ports m))
    (Circuit.memories c);
  (* level-major, uid-minor layout *)
  let ordered =
    List.sort
      (fun a b ->
        let la = Hashtbl.find level_by_uid (uid a)
        and lb = Hashtbl.find level_by_uid (uid b) in
        if la <> lb then compare la lb else compare (uid a) (uid b))
      topo
  in
  let slot_by_uid = Hashtbl.create n in
  List.iteri (fun slot s -> Hashtbl.add slot_by_uid (uid s) slot) ordered;
  let nodes =
    Array.of_list
      (List.mapi
         (fun slot s ->
           {
             n_slot = slot;
             n_signal = s;
             n_level = Hashtbl.find level_by_uid (uid s);
             n_deps =
               Array.of_list
                 (List.map
                    (fun d -> Hashtbl.find slot_by_uid (uid d))
                    (Circuit.comb_deps s));
             n_fanout =
               Option.value ~default:0
                 (Hashtbl.find_opt fanout_by_uid (uid s));
           })
         ordered)
  in
  let n_levels =
    Array.fold_left (fun acc nd -> max acc (nd.n_level + 1)) 1 nodes
  in
  let slices = Array.make n_levels (0, 0) in
  Array.iter
    (fun nd ->
      let first, count = slices.(nd.n_level) in
      if count = 0 then slices.(nd.n_level) <- (nd.n_slot, 1)
      else slices.(nd.n_level) <- (first, count + 1))
    nodes;
  { circuit = c; nodes; slices; slot_by_uid }

let circuit t = t.circuit
let nodes t = t.nodes
let n_nodes t = Array.length t.nodes
let n_levels t = Array.length t.slices
let comb_depth t = n_levels t - 1
let level_slice t lvl = t.slices.(lvl)
let deps_resolved t nd =
  Array.map (fun slot -> t.nodes.(slot).n_signal) nd.n_deps

let slot_of t s = Hashtbl.find t.slot_by_uid (uid s)
let node_of t s = t.nodes.(slot_of t s)
let level_of t s = (node_of t s).n_level
let fanout_of t s = (node_of t s).n_fanout
let max_fanout t = Array.fold_left (fun acc nd -> max acc nd.n_fanout) 0 t.nodes

let hotspots t ~n =
  let ranked =
    List.sort
      (fun a b ->
        if a.n_fanout <> b.n_fanout then compare b.n_fanout a.n_fanout
        else compare (uid a.n_signal) (uid b.n_signal))
      (Array.to_list t.nodes)
  in
  List.filteri (fun i _ -> i < n) ranked
