(** Verilog-2001 emission for a {!Circuit} — the composer's hand-off artifact
    to FPGA/ASIC tool flows. One module per circuit, single clock [clk]. *)

val of_circuit : Circuit.t -> string
