(** A closed design: named outputs plus everything reachable from them.

    [create] walks the graph, checks that every wire is assigned and that
    there are no combinational cycles, and records a topological order of
    the combinational logic used by both the simulator and the Verilog
    printer. *)

type t

val create : name:string -> outputs:(string * Signal.t) list -> t
(** Raises [Failure] on dangling wires, duplicate port names, or
    combinational loops (with the offending signal's uid/name). *)

val name : t -> string
val outputs : t -> (string * Signal.t) list
val inputs : t -> (string * int) list
(** Discovered [(name, width)] inputs, sorted by name. Duplicate input
    names must agree on width. *)

val signals_in_topo_order : t -> Signal.t list
(** Combinational evaluation order; sequential nodes (registers, sync
    memory reads) appear as sources. *)

val registers : t -> Signal.t list
val memories : t -> Signal.Mem.mem list
val sync_reads : t -> Signal.t list

val stats : t -> (string * int) list
(** Node-count statistics: regs, memories, total nodes, etc. (used by the
    resource estimator). *)
