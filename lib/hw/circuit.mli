(** A closed design: named outputs plus everything reachable from them.

    [create] walks the graph, checks that every wire is assigned and that
    there are no combinational cycles, and records a topological order of
    the combinational logic used by both the simulator and the Verilog
    printer. [analyze] is the soft path: the same checks reported as
    {!Diag} diagnostics instead of an exception, used by {!Lint}. *)

type t

val analyze :
  name:string -> outputs:(string * Signal.t) list -> (t, Diag.t list) result
(** Structural check without raising: returns [Error diags] listing every
    problem found (rules [no-outputs], [dup-output-port], [undriven-wire]
    with the first consumer as context, [comb-loop] with the full cycle
    path, [input-width-conflict]) or [Ok circuit] when clean. *)

val create : name:string -> outputs:(string * Signal.t) list -> t
(** Raises [Failure] on dangling wires, duplicate port names, or
    combinational loops (reporting the full cycle path: names + kinds). *)

val name : t -> string
val outputs : t -> (string * Signal.t) list
val inputs : t -> (string * int) list
(** Discovered [(name, width)] inputs, sorted by name. Duplicate input
    names must agree on width. *)

val signals_in_topo_order : t -> Signal.t list
(** Combinational evaluation order; sequential nodes (registers, sync
    memory reads) appear as sources. *)

val registers : t -> Signal.t list
val memories : t -> Signal.Mem.mem list
val sync_reads : t -> Signal.t list

val stats : t -> (string * int) list
(** Node-count statistics: regs, memories, total nodes, etc. (used by the
    resource estimator), plus ["comb_depth"] and ["max_fanout"] computed
    with the same definitions as {!Levelize}. *)

(** {1 Graph introspection (used by {!Lint} and the back-ends)} *)

val comb_deps : Signal.t -> Signal.t list
(** Combinational fan-in: signals whose current-cycle value the node
    needs. Empty for registers and synchronous reads. *)

val seq_deps : Signal.t -> Signal.t list
(** Fan-in of sequential elements, sampled at the cycle boundary. *)

val mem_of : Signal.t -> Signal.Mem.mem option
val kind_name : Signal.t -> string
val describe : Signal.t -> string
(** ["signal #12 (count, wire)"] — uid, name when present, kind. *)
