(** Backend-agnostic RTL simulation.

    {!Cyclesim} (the reference interpreter) and {!Compile} (the
    levelized compiled backend) implement the same evaluation model and
    the same module interface {!S}; this module pins that interface down
    and provides a runtime-selectable dispatch so hot callers
    ([Core.Rtl_core], the bench harness, [beethoven_gen sim]) can switch
    backends with a value instead of a functor. *)

(** The simulator operations both backends provide, with identical
    semantics and exceptions (see {!Cyclesim} for the documentation of
    each). *)
module type S = sig
  type t

  val create : Circuit.t -> t
  val set_input : t -> string -> Bits.t -> unit
  val set_input_int : t -> string -> int -> unit
  val output : t -> string -> Bits.t
  val output_int : t -> string -> int
  val peek : t -> Signal.t -> Bits.t
  val settle : t -> unit
  val step : t -> unit
  val cycle : t -> int
  val read_memory : t -> Signal.Mem.mem -> int -> Bits.t
  val write_memory : t -> Signal.Mem.mem -> int -> Bits.t -> unit
end

type backend = Interpreter | Compiled

val default_backend : backend
(** {!Compiled} — the interpreter remains the differential reference. *)

val backend_name : backend -> string
(** ["interpreter"] / ["compiled"]. *)

val backend_of_string : string -> backend option
(** Inverse of {!backend_name}; [None] on anything else. *)

type t
(** A simulator instance of either backend. *)

val create : ?backend:backend -> Circuit.t -> t
(** Defaults to {!default_backend}. *)

val backend : t -> backend

val set_input : t -> string -> Bits.t -> unit
val set_input_int : t -> string -> int -> unit
val output : t -> string -> Bits.t
val output_int : t -> string -> int
val peek : t -> Signal.t -> Bits.t
val settle : t -> unit
val step : t -> unit
val cycle : t -> int
val read_memory : t -> Signal.Mem.mem -> int -> Bits.t
val write_memory : t -> Signal.Mem.mem -> int -> Bits.t -> unit
