open Signal

let node_count c = List.assoc "nodes" (Circuit.stats c)

let eval_op2 op a b =
  match op with
  | Add -> Bits.add a b
  | Sub -> Bits.sub a b
  | Mul -> Bits.mul a b
  | And -> Bits.logand a b
  | Or -> Bits.logor a b
  | Xor -> Bits.logxor a b
  | Eq -> if Bits.equal a b then Bits.one 1 else Bits.zero 1
  | Lt -> if Bits.lt a b then Bits.one 1 else Bits.zero 1

let constant_fold circuit =
  let mapping : (int, Signal.t) Hashtbl.t = Hashtbl.create 256 in
  let mem_mapping : (int, Signal.Mem.mem) Hashtbl.t = Hashtbl.create 8 in
  let const_of s =
    match kind s with Const b -> Some b | _ -> None
  in
  let new_mem m =
    match Hashtbl.find_opt mem_mapping (mem_uid m) with
    | Some nm -> nm
    | None ->
        let nm =
          Mem.create ~name:(mem_name m) ~size:(mem_size m)
            ~width:(mem_width m) ()
        in
        Hashtbl.add mem_mapping (mem_uid m) nm;
        nm
  in
  (* pre-create fresh wires so feedback (always through a wire) resolves *)
  let topo = Circuit.signals_in_topo_order circuit in
  List.iter
    (fun s ->
      match kind s with
      | Wire _ -> Hashtbl.add mapping (uid s) (wire (width s))
      | _ -> ())
    topo;
  (* memoized recursive rebuild; cycles always pass through a pre-created
     wire, so the recursion terminates *)
  let rec force s =
    match Hashtbl.find_opt mapping (uid s) with
    | Some s' -> s'
    | None ->
        let s' =
          match kind s with
          | Const b -> const b
          | Input n -> input n (width s)
          | Wire _ -> assert false (* pre-created *)
          | Op2 (op, a, b) -> (
              let a' = force a and b' = force b in
              match (const_of a', const_of b') with
              | Some ca, Some cb -> const (eval_op2 op ca cb)
              | Some ca, None when op = Add && Bits.is_zero ca -> b'
              | None, Some cb when (op = Add || op = Sub) && Bits.is_zero cb
                -> a'
              | Some ca, None when op = And && Bits.is_zero ca ->
                  const (Bits.zero (width s))
              | None, Some cb when op = And && Bits.is_zero cb ->
                  const (Bits.zero (width s))
              | Some ca, None when op = Or && Bits.is_zero ca -> b'
              | None, Some cb when op = Or && Bits.is_zero cb -> a'
              | Some ca, None when op = Mul && Bits.is_zero ca ->
                  const (Bits.zero (width s))
              | None, Some cb when op = Mul && Bits.is_zero cb ->
                  const (Bits.zero (width s))
              | _ -> (
                  match op with
                  | Add -> a' +: b'
                  | Sub -> a' -: b'
                  | Mul -> a' *: b'
                  | And -> a' &: b'
                  | Or -> a' |: b'
                  | Xor -> a' ^: b'
                  | Eq -> a' ==: b'
                  | Lt -> a' <: b'))
          | Not a -> (
              let a' = force a in
              match const_of a' with
              | Some ca -> const (Bits.lognot ca)
              | None -> lnot a')
          | Shift (dir, n, a) -> (
              let a' = force a in
              match const_of a' with
              | Some ca ->
                  const
                    (match dir with
                    | Sll -> Bits.shift_left ca n
                    | Srl -> Bits.shift_right ca n
                    | Sra -> Bits.shift_right_arith ca n)
              | None -> (
                  match dir with
                  | Sll -> sll a' n
                  | Srl -> srl a' n
                  | Sra -> sra a' n))
          | Select (hi, lo, a) -> (
              let a' = force a in
              match const_of a' with
              | Some ca -> const (Bits.slice ca ~hi ~lo)
              | None -> select a' ~hi ~lo)
          | Concat parts -> (
              let parts' = List.map force parts in
              let consts = List.map const_of parts' in
              if List.for_all Option.is_some consts then
                const (Bits.concat_list (List.map Option.get consts))
              else concat parts')
          | Mux (sel, cases) -> (
              let sel' = force sel in
              let cases' = List.map force cases in
              match const_of sel' with
              | Some csel ->
                  List.nth cases'
                    (min (Bits.to_int_trunc csel) (List.length cases' - 1))
              | None -> mux sel' cases')
          | Reg { d; enable; clear; init } ->
              let enable =
                match Option.map force enable with
                | Some e when const_of e = Some (Bits.one 1) -> None
                | e -> e
              in
              let clear =
                match Option.map force clear with
                | Some c when const_of c = Some (Bits.zero 1) -> None
                | c -> c
              in
              reg ?enable ?clear ~init (force d)
          | Mem_read_async (m, addr) ->
              Mem.read_async (new_mem m) ~addr:(force addr)
          | Mem_read_sync (m, addr, enable) ->
              Mem.read_sync (new_mem m) ~enable:(force enable)
                ~addr:(force addr) ()
        in
        let s' = match name_of s with Some n -> s' -- n | None -> s' in
        Hashtbl.add mapping (uid s) s';
        s'
  in
  List.iter (fun s -> ignore (force s)) topo;
  (* resolve wires to their mapped drivers *)
  List.iter
    (fun s ->
      match kind s with
      | Wire r ->
          Signal.assign (Hashtbl.find mapping (uid s)) (force (Option.get !r))
      | _ -> ())
    topo;
  (* memory write ports *)
  List.iter
    (fun m ->
      let nm = new_mem m in
      List.iter
        (fun wp ->
          Mem.write nm ~enable:(force wp.wp_enable) ~addr:(force wp.wp_addr)
            ~data:(force wp.wp_data))
        (mem_write_ports m))
    (Circuit.memories circuit);
  let outputs =
    List.map (fun (n, s) -> (n, force s)) (Circuit.outputs circuit)
  in
  Circuit.create ~name:(Circuit.name circuit) ~outputs
