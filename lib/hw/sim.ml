module type S = sig
  type t

  val create : Circuit.t -> t
  val set_input : t -> string -> Bits.t -> unit
  val set_input_int : t -> string -> int -> unit
  val output : t -> string -> Bits.t
  val output_int : t -> string -> int
  val peek : t -> Signal.t -> Bits.t
  val settle : t -> unit
  val step : t -> unit
  val cycle : t -> int
  val read_memory : t -> Signal.Mem.mem -> int -> Bits.t
  val write_memory : t -> Signal.Mem.mem -> int -> Bits.t -> unit
end

(* both backends must keep conforming to the common interface *)
module _ : S = Cyclesim
module _ : S = Compile

type backend = Interpreter | Compiled

let default_backend = Compiled
let backend_name = function Interpreter -> "interpreter" | Compiled -> "compiled"

let backend_of_string = function
  | "interpreter" -> Some Interpreter
  | "compiled" -> Some Compiled
  | _ -> None

type t = I of Cyclesim.t | C of Compile.t

let create ?(backend = default_backend) circuit =
  match backend with
  | Interpreter -> I (Cyclesim.create circuit)
  | Compiled -> C (Compile.create circuit)

let backend = function I _ -> Interpreter | C _ -> Compiled

let set_input t n v =
  match t with I s -> Cyclesim.set_input s n v | C s -> Compile.set_input s n v

let set_input_int t n v =
  match t with
  | I s -> Cyclesim.set_input_int s n v
  | C s -> Compile.set_input_int s n v

let output t n =
  match t with I s -> Cyclesim.output s n | C s -> Compile.output s n

let output_int t n =
  match t with I s -> Cyclesim.output_int s n | C s -> Compile.output_int s n

let peek t s = match t with I i -> Cyclesim.peek i s | C c -> Compile.peek c s
let settle = function I s -> Cyclesim.settle s | C s -> Compile.settle s
let step = function I s -> Cyclesim.step s | C s -> Compile.step s
let cycle = function I s -> Cyclesim.cycle s | C s -> Compile.cycle s

let read_memory t m a =
  match t with
  | I s -> Cyclesim.read_memory s m a
  | C s -> Compile.read_memory s m a

let write_memory t m a v =
  match t with
  | I s -> Cyclesim.write_memory s m a v
  | C s -> Compile.write_memory s m a v
