type t = {
  id : int;
  width : int;
  knd : kind;
  mutable name : string option;
}

and kind =
  | Const of Bits.t
  | Input of string
  | Wire of t option ref
  | Op2 of op2 * t * t
  | Not of t
  | Shift of shift * int * t
  | Mux of t * t list
  | Select of int * int * t
  | Concat of t list
  | Reg of reg_spec
  | Mem_read_async of mem_t * t
  | Mem_read_sync of mem_t * t * t

and op2 = Add | Sub | Mul | And | Or | Xor | Eq | Lt
and shift = Sll | Srl | Sra
and reg_spec = { d : t; enable : t option; clear : t option; init : Bits.t }
and write_port = { wp_enable : t; wp_addr : t; wp_data : t }

and mem_t = {
  m_id : int;
  m_name : string;
  m_size : int;
  m_width : int;
  mutable m_writes : write_port list;
}

let next_id = ref 0

(* innermost active tracking scope, if any (see [tracking]) *)
let trace : t list ref option ref = ref None

let fresh width knd =
  incr next_id;
  let s = { id = !next_id; width; knd; name = None } in
  (match !trace with Some acc -> acc := s :: !acc | None -> ());
  s

let tracking f =
  let acc = ref [] in
  let saved = !trace in
  trace := Some acc;
  let r = Fun.protect ~finally:(fun () -> trace := saved) f in
  (r, List.rev !acc)

let uid t = t.id
let width t = t.width
let kind t = t.knd

let const b = fresh (Bits.width b) (Const b)
let of_int ~width n = const (Bits.of_int ~width n)
let vdd = const (Bits.one 1)
let gnd = const (Bits.zero 1)
let zero w = const (Bits.zero w)

let input name width =
  if width <= 0 then invalid_arg "Signal.input: width must be positive";
  fresh width (Input name)

let wire width = fresh width (Wire (ref None))

let assign w d =
  match w.knd with
  | Wire r -> (
      if w.width <> d.width then
        invalid_arg
          (Printf.sprintf "Signal.assign: width mismatch (%d vs %d)" w.width
             d.width);
      match !r with
      | Some _ -> invalid_arg "Signal.assign: wire already assigned"
      | None -> r := Some d)
  | _ -> invalid_arg "Signal.assign: not a wire"

let is_assigned w =
  match w.knd with
  | Wire r -> Option.is_some !r
  | _ -> invalid_arg "Signal.is_assigned: not a wire"

let same_width op a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Signal.%s: width mismatch (%d vs %d)" op a.width b.width)

let op2 op name a b =
  same_width name a b;
  let w = match op with Eq | Lt -> 1 | _ -> a.width in
  fresh w (Op2 (op, a, b))

let add a b = op2 Add "add" a b
let sub a b = op2 Sub "sub" a b
let mul a b = op2 Mul "mul" a b
let ( +: ) = add
let ( -: ) = sub
let ( *: ) = mul
let ( &: ) a b = op2 And "and" a b
let ( |: ) a b = op2 Or "or" a b
let ( ^: ) a b = op2 Xor "xor" a b
let lnot a = fresh a.width (Not a)
let ( ==: ) a b = op2 Eq "eq" a b
let ( <: ) a b = op2 Lt "lt" a b
let ( <>: ) a b = lnot (a ==: b)
let ( >: ) a b = b <: a
let ( <=: ) a b = lnot (b <: a)
let ( >=: ) a b = lnot (a <: b)

let shift dir a n =
  if n < 0 then invalid_arg "Signal.shift: negative amount";
  fresh a.width (Shift (dir, n, a))

let sll a n = shift Sll a n
let srl a n = shift Srl a n
let sra a n = shift Sra a n

let mux2 sel on_true on_false =
  if sel.width <> 1 then invalid_arg "Signal.mux2: selector must be 1 bit";
  same_width "mux2" on_true on_false;
  fresh on_true.width (Mux (sel, [ on_false; on_true ]))

let mux sel cases =
  match cases with
  | [] -> invalid_arg "Signal.mux: no cases"
  | first :: rest ->
      List.iter (same_width "mux" first) rest;
      let n = List.length cases in
      if sel.width < Sys.int_size - 2 && n > 1 lsl sel.width then
        invalid_arg
          (Printf.sprintf
             "Signal.mux: %d-bit selector can only reach %d of %d cases"
             sel.width (1 lsl sel.width) n);
      fresh first.width (Mux (sel, cases))

let select t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.width then
    invalid_arg
      (Printf.sprintf "Signal.select: [%d:%d] out of range for width %d" hi lo
         t.width);
  fresh (hi - lo + 1) (Select (hi, lo, t))

let bit t i = select t ~hi:i ~lo:i
let msb t = bit t (t.width - 1)
let lsb t = bit t 0

let concat parts =
  match parts with
  | [] -> invalid_arg "Signal.concat: empty"
  | _ ->
      let w = List.fold_left (fun acc s -> acc + s.width) 0 parts in
      fresh w (Concat parts)

let uresize t w =
  if w = t.width then t
  else if w < t.width then select t ~hi:(w - 1) ~lo:0
  else concat [ zero (w - t.width); t ]

let repeat t n =
  if n < 1 then invalid_arg "Signal.repeat: count must be >= 1";
  concat (List.init n (fun _ -> t))

let sext t w =
  if w < t.width then select t ~hi:(w - 1) ~lo:0
  else if w = t.width then t
  else concat [ repeat (msb t) (w - t.width); t ]

let reduce_or t = zero t.width <: t

let reduce_and t =
  let all = const (Bits.ones t.width) in
  t ==: all

let reg ?enable ?clear ?init d =
  let init = Option.value init ~default:(Bits.zero d.width) in
  if Bits.width init <> d.width then
    invalid_arg "Signal.reg: init width mismatch";
  (match enable with
  | Some e when e.width <> 1 -> invalid_arg "Signal.reg: enable must be 1 bit"
  | _ -> ());
  (match clear with
  | Some c when c.width <> 1 -> invalid_arg "Signal.reg: clear must be 1 bit"
  | _ -> ());
  fresh d.width (Reg { d; enable; clear; init })

let reg_fb ?enable ?init ~width f =
  let w = wire width in
  let q = reg ?enable ?init w in
  assign w (f q);
  q

module Mem = struct
  type mem = mem_t

  let create ?name ~size ~width () =
    if size <= 0 || width <= 0 then invalid_arg "Mem.create: bad dimensions";
    incr next_id;
    let m_name =
      match name with Some n -> n | None -> Printf.sprintf "mem_%d" !next_id
    in
    { m_id = !next_id; m_name; m_size = size; m_width = width; m_writes = [] }

  (* bits needed to index [size] entries (>= 1: an address port always has
     at least one bit) *)
  let addr_bits_for size =
    let rec go k = if 1 lsl k >= size then k else go (k + 1) in
    max 1 (go 0)

  let addr_ok m addr =
    (* the address must be able to reach every entry; wider addresses are
       accepted here and range-checked at simulation time (the linter
       flags them) *)
    if addr.width < addr_bits_for m.m_size then
      invalid_arg
        (Printf.sprintf
           "Signal.Mem: %d-bit address cannot index %s (%d entries need %d \
            bits)"
           addr.width m.m_name m.m_size (addr_bits_for m.m_size))

  let write m ~enable ~addr ~data =
    if enable.width <> 1 then invalid_arg "Mem.write: enable must be 1 bit";
    if data.width <> m.m_width then invalid_arg "Mem.write: data width";
    addr_ok m addr;
    m.m_writes <- { wp_enable = enable; wp_addr = addr; wp_data = data } :: m.m_writes

  let read_async m ~addr =
    addr_ok m addr;
    fresh m.m_width (Mem_read_async (m, addr))

  let read_sync m ?(enable = vdd) ~addr () =
    addr_ok m addr;
    if enable.width <> 1 then invalid_arg "Mem.read_sync: enable must be 1 bit";
    fresh m.m_width (Mem_read_sync (m, addr, enable))

  let size m = m.m_size
  let data_width m = m.m_width
end

let ( -- ) t n =
  t.name <- Some n;
  t

let name_of t = t.name
let mem_uid (m : mem_t) = m.m_id
let mem_addr_bits (m : mem_t) = Mem.addr_bits_for m.m_size
let mem_size (m : mem_t) = m.m_size
let mem_width (m : mem_t) = m.m_width
let mem_name (m : mem_t) = m.m_name
let mem_write_ports (m : mem_t) = List.rev m.m_writes
