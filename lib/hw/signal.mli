(** RTL signal graph — the hardware-construction half of the Chisel
    substitute. Accelerator cores (Fig. 2 of the paper) are written against
    this module; {!Circuit} snapshots a design, {!Cyclesim} executes it and
    {!Verilog} prints it.

    All signals are unsigned bitvectors. Sequential elements ({!reg},
    {!Mem}) latch on the single implicit clock. *)

type t

val uid : t -> int
val width : t -> int

(** {1 Constants and inputs} *)

val const : Bits.t -> t
val of_int : width:int -> int -> t
val vdd : t (** 1-bit constant 1 *)

val gnd : t (** 1-bit constant 0 *)

val input : string -> int -> t
(** A named circuit input of the given width. *)

(** {1 Wires (late assignment / feedback)} *)

val wire : int -> t
val assign : t -> t -> unit
(** [assign w d] drives wire [w] with [d]. A wire may be assigned once. *)

val is_assigned : t -> bool

(** {1 Combinational operators} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t (** truncating at operand width *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val lnot : t -> t
val ( ==: ) : t -> t -> t (** 1-bit result *)

val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t (** unsigned less-than, 1-bit *)

val ( <=: ) : t -> t -> t
val ( >: ) : t -> t -> t
val ( >=: ) : t -> t -> t
val sll : t -> int -> t
val srl : t -> int -> t
val sra : t -> int -> t

val mux2 : t -> t -> t -> t
(** [mux2 sel on_true on_false]; [sel] must be 1 bit wide. *)

val mux : t -> t list -> t
(** [mux sel cases] selects [cases[sel]]; out-of-range selects the last
    case. At least one case required, all the same width. Raises
    [Invalid_argument] when the selector is too narrow to reach every
    case (e.g. a 1-bit selector with three cases) — the extra cases
    would be silently unreachable. *)

val select : t -> hi:int -> lo:int -> t
val bit : t -> int -> t
val msb : t -> t
val lsb : t -> t
val concat : t list -> t (** head of the list = most-significant bits *)

val uresize : t -> int -> t (** zero-extend / truncate *)

val sext : t -> int -> t (** sign-extend / truncate *)

val repeat : t -> int -> t (** concatenate [n >= 1] copies *)

val zero : int -> t
val reduce_or : t -> t
val reduce_and : t -> t

(** {1 Sequential elements} *)

val reg : ?enable:t -> ?clear:t -> ?init:Bits.t -> t -> t
(** [reg d] is a register latching [d] each cycle ([enable] high, default
    always). [clear] synchronously resets to [init] (default zeros). *)

val reg_fb : ?enable:t -> ?init:Bits.t -> width:int -> (t -> t) -> t
(** [reg_fb ~width f] builds a register whose next value is [f q] — the
    usual idiom for counters and state machines. *)

module Mem : sig
  type mem
  (** Multi-port memory. Writes commit at the cycle boundary; synchronous
      reads observe the pre-write contents (read-first). *)

  val create : ?name:string -> size:int -> width:int -> unit -> mem

  val write : mem -> enable:t -> addr:t -> data:t -> unit
  (** All ports raise [Invalid_argument] when the address is too narrow to
      index every entry of the memory; wider addresses are accepted (and
      range-checked at simulation time), but {!Lint} flags them. *)

  val read_async : mem -> addr:t -> t
  val read_sync : mem -> ?enable:t -> addr:t -> unit -> t
  val size : mem -> int
  val data_width : mem -> int
end

(** {1 Naming} *)

val ( -- ) : t -> string -> t
(** Attach a debug/Verilog name. *)

val name_of : t -> string option

(** {1 Construction tracking}

    {!Lint} can only find dead logic (nodes that never reach an output) if
    it knows what was built, since a {!Circuit} keeps reachable nodes
    only. *)

val tracking : (unit -> 'a) -> 'a * t list
(** [tracking f] runs [f] and additionally returns every signal created
    during the call, in creation order. Nested calls record into the
    innermost scope. *)

(** {1 Internals exposed for Circuit/Cyclesim/Verilog} *)

type kind =
  | Const of Bits.t
  | Input of string
  | Wire of t option ref
  | Op2 of op2 * t * t
  | Not of t
  | Shift of shift * int * t
  | Mux of t * t list
  | Select of int * int * t
  | Concat of t list
  | Reg of reg_spec
  | Mem_read_async of Mem.mem * t
  | Mem_read_sync of Mem.mem * t * t (* mem, addr, enable *)

and op2 = Add | Sub | Mul | And | Or | Xor | Eq | Lt
and shift = Sll | Srl | Sra
and reg_spec = { d : t; enable : t option; clear : t option; init : Bits.t }

val kind : t -> kind

type write_port = { wp_enable : t; wp_addr : t; wp_data : t }

val mem_uid : Mem.mem -> int

val mem_addr_bits : Mem.mem -> int
(** Bits needed to index every entry (>= 1). *)

val mem_size : Mem.mem -> int
val mem_width : Mem.mem -> int
val mem_name : Mem.mem -> string
val mem_write_ports : Mem.mem -> write_port list
