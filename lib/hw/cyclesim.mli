(** Cycle-accurate interpreter for a {!Circuit}.

    Evaluation model per {!step}: combinational logic settles against the
    current register/memory state and the input values, then registers latch
    and memory writes commit (registers read-before-write, memories
    read-first). This matches a single-clock synchronous design. *)

type t

val create : Circuit.t -> t

val set_input : t -> string -> Bits.t -> unit
(** Raises [Not_found] for unknown ports, [Invalid_argument] on width
    mismatch. Values persist across cycles until overwritten. *)

val set_input_int : t -> string -> int -> unit
val output : t -> string -> Bits.t
val output_int : t -> string -> int

val peek : t -> Signal.t -> Bits.t
(** Read any signal's settled value (for debugging/tests). Only valid after
    at least one {!settle} or {!step}. *)

val settle : t -> unit
(** Recompute combinational logic without advancing the clock. *)

val step : t -> unit
(** Settle, then advance one clock edge. *)

val cycle : t -> int
(** Number of clock edges so far. *)

val read_memory : t -> Signal.Mem.mem -> int -> Bits.t
val write_memory : t -> Signal.Mem.mem -> int -> Bits.t -> unit
(** Backdoor memory access for test benches. *)
