(** Multi-pass netlist linter.

    The composer promises that a per-core netlist plugged into a generated
    SoC is well-formed; this module is the static half of that promise. It
    runs a rule catalog over a {!Circuit.t} (or, via {!graph}, over a raw
    output list so structural breakage is reported as diagnostics rather
    than an exception) and emits {!Diag.t} values with stable rule ids.

    Rule catalog (see {!rules} for the machine-readable form):

    - [undriven-wire] (error) — a wire without a driver, reported with the
      first consumer that references it ({!graph} only; {!Circuit.create}
      raises on the hard path).
    - [comb-loop] (error) — combinational cycle, reported with the full
      cycle path (signal names + kinds) ({!graph} only).
    - [dup-output-port], [no-outputs], [input-width-conflict] (error) —
      structural port problems ({!graph} only).
    - [dead-logic] (warning) — tracked signals (see {!Signal.tracking})
      that cannot reach any circuit output.
    - [mux-sel-wide] (warning) — a mux selector wider than its case count
      needs; the out-of-range encodings silently clamp to the last case.
      (The opposite defect — a selector too narrow to reach every case —
      is rejected at construction by {!Signal.mux}.)
    - [async-read-mapping] (warning) — a memory with an asynchronous read
      port whose size exceeds the distributed-RAM budget: BRAM/URAM cells
      only provide synchronous reads, so the mapping cannot use them.
    - [mem-addr-wide] (warning) — a memory port address wider than the
      memory depth needs; the excess encodings are range-checked at
      simulation time only. (Too-narrow addresses are rejected at
      construction by {!Signal.Mem}.)
    - [write-port-overlap] (warning) — multiple write ports whose enables
      are not provably mutually exclusive and whose addresses may collide.
    - [unnamed-state] (info) — unnamed registers / auto-named memories,
      which degrade VCD and generated-Verilog readability.
    - [const-foldable] (info) — constant folding ({!Opt.constant_fold})
      would shrink the netlist.

    Value-aware rules, computed by {!Dataflow}'s abstract interpretation
    over the {!Levelize}d netlist:

    - [read-before-init] (warning) — an uninitialized memory read (X
      under 4-state semantics) may reach an output or a write enable.
    - [const-output] (warning) — an output that is not syntactically a
      constant is provably constant on every cycle for every input.
    - [dead-mux-arm] (warning) — a mux selector is provably constant, so
      every other arm is unreachable logic.
    - [redundant-reset] (info) — a register's data input provably equals
      its reset value, making the clear term a no-op.
    - [dataflow-opt-divergence] (error) — {!Opt.constant_fold} and
      {!Dataflow} disagree about a constant output; never fires on a
      correct build (it is a differential soundness check of the two
      analyses, kept in the catalog so a regression in either is loud). *)

val rules : (string * Diag.severity * string) list
(** (rule id, default severity, one-line rationale) for every rule this
    module can emit. *)

val circuit : ?lutram_max_bits:int -> Circuit.t -> Diag.t list
(** Lint a well-formed circuit. [lutram_max_bits] is the largest memory
    (in bits) the target can realize as distributed RAM with asynchronous
    reads; defaults to 1024 (the composer's LUTRAM threshold). Pass the
    platform's own figure to cross-check against its memory cells. *)

val graph :
  ?lutram_max_bits:int ->
  ?tracked:Signal.t list ->
  name:string ->
  (string * Signal.t) list ->
  Diag.t list
(** Lint a raw output list. Structural problems (undriven wires,
    combinational loops, port clashes) come back as error diagnostics
    instead of raising; when the graph is structurally sound the full
    {!circuit} catalog runs, plus [dead-logic] over [tracked] (signals
    recorded with {!Signal.tracking} that never reach an output). *)
