(** Compiled cycle-accurate simulator over the {!Levelize} IR.

    Drop-in replacement for {!Cyclesim} (same evaluation model: settle,
    then registers latch read-before-write and memories commit
    read-first), but instead of interpreting the signal graph through
    per-uid hashtables it specializes the circuit once at {!create}:

    - every node gets a dense slot (the {!Levelize} slot order, which is
      a valid evaluation order) in preallocated value arrays — signals of
      width [<= 62] live in a plain [int array] with no per-cycle
      allocation, wider signals in a [Bits.t array];
    - every combinational node becomes one closure specialized to its
      kind, operand slots and width mask, run in slot order by {!settle};
    - registers, synchronous memory reads and memory write ports become
      latch/commit closures, so {!step} is three tight array loops.

    Outputs are bit-identical to {!Cyclesim} on every circuit (the
    lockstep qcheck suite in [test/test_compile.ml] holds both backends
    to that). Unlike the interpreter, an unconnected wire is rejected
    here at {!create} time with [Invalid_argument] naming the wire,
    before the first [step] can trip over it. *)

type t

val create : Circuit.t -> t
(** Compile the circuit. Raises [Invalid_argument] naming the offending
    signal if the circuit contains an unconnected wire. *)

val set_input : t -> string -> Bits.t -> unit
(** Raises [Not_found] for unknown ports, [Invalid_argument] on width
    mismatch. Values persist across cycles until overwritten. *)

val set_input_int : t -> string -> int -> unit
val output : t -> string -> Bits.t
val output_int : t -> string -> int

val peek : t -> Signal.t -> Bits.t
(** Read any signal's settled value (for debugging/tests). Only valid after
    at least one {!settle} or {!step}. *)

val settle : t -> unit
(** Recompute combinational logic without advancing the clock. *)

val step : t -> unit
(** Settle, then advance one clock edge. *)

val cycle : t -> int
(** Number of clock edges so far. *)

val read_memory : t -> Signal.Mem.mem -> int -> Bits.t
val write_memory : t -> Signal.Mem.mem -> int -> Bits.t -> unit
(** Backdoor memory access for test benches. *)
