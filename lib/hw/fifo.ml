open Signal

type t = {
  enq_valid : Signal.t;
  enq_data : Signal.t;
  deq_ready : Signal.t;
  enq_ready : Signal.t;
  deq_valid : Signal.t;
  deq_data : Signal.t;
  occupancy : Signal.t;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let create ?(name = "fifo") ~depth ~width () =
  if (not (is_pow2 depth)) || depth < 2 then
    invalid_arg "Fifo.create: depth must be a power of two >= 2";
  if width < 1 then invalid_arg "Fifo.create: width";
  let abits = log2 depth in
  let cbits = abits + 1 in
  let enq_valid = wire 1 in
  let enq_data = wire width in
  let deq_ready = wire 1 in
  let mem = Mem.create ~name:(name ^ "_ram") ~size:depth ~width () in
  let count = wire cbits in
  let rd_ptr = wire abits in
  let wr_ptr = wire abits in
  let empty = count ==: zero cbits in
  let full = count ==: of_int ~width:cbits depth in
  let enq_ready = lnot full in
  let deq_valid = lnot empty in
  let do_enq = enq_valid &: enq_ready in
  let do_deq = deq_valid &: deq_ready in
  Mem.write mem ~enable:do_enq ~addr:wr_ptr ~data:enq_data;
  (* async read keeps single-cycle dequeue; the composer's memory backend
     decides the physical cell, adding an output register when the target
     requires synchronous reads *)
  let deq_data = Mem.read_async mem ~addr:rd_ptr in
  (* pointers advance on their handshakes; the power-of-two width wraps
     them modulo depth for free *)
  let next_ptr p fire =
    reg (mux2 fire (p +: of_int ~width:abits 1) p)
  in
  assign wr_ptr (next_ptr wr_ptr do_enq);
  assign rd_ptr (next_ptr rd_ptr do_deq);
  let next_count =
    mux2 (do_enq &: lnot do_deq)
      (count +: of_int ~width:cbits 1)
      (mux2 (do_deq &: lnot do_enq) (count -: of_int ~width:cbits 1) count)
  in
  assign count (reg next_count);
  {
    enq_valid;
    enq_data;
    deq_ready;
    enq_ready;
    deq_valid;
    deq_data;
    occupancy = count;
  }
