(** VCD waveform dumping for {!Cyclesim} — the debugging artifact the
    paper's simulation platform (Verilator/VCS) provides; wire it into a
    test bench to inspect a Core's behaviour cycle by cycle. *)

type t

val create :
  ?timescale_ps:int ->
  Cyclesim.t ->
  signals:(string * Signal.t) list ->
  unit ->
  t
(** Watch the given (name, signal) pairs. [timescale_ps] defaults to the
    composer's 4000 ps fabric clock; one {!sample} = one timestep. *)

val sample : t -> unit
(** Record the watched signals' current values (call after each
    [Cyclesim.step]). Only changed values are emitted. *)

val contents : t -> string
(** The VCD file text accumulated so far (header + value changes). *)

val write_file : t -> string -> unit
