open Signal

type t = {
  name : string;
  outputs : (string * Signal.t) list;
  inputs : (string * int) list;
  topo : Signal.t list;
  registers : Signal.t list;
  memories : Signal.Mem.mem list;
  sync_reads : Signal.t list;
}

(* Combinational fan-in of a node: the signals whose *current-cycle* value
   is needed to evaluate it. Registers and sync reads depend on state, not
   on their inputs, so they contribute nothing here. *)
let comb_deps s =
  match kind s with
  | Const _ | Input _ | Reg _ | Mem_read_sync _ -> []
  | Wire r -> ( match !r with Some d -> [ d ] | None -> [])
  | Op2 (_, a, b) -> [ a; b ]
  | Not a | Shift (_, _, a) | Select (_, _, a) -> [ a ]
  | Mux (sel, cases) -> sel :: cases
  | Concat parts -> parts
  | Mem_read_async (_, addr) -> [ addr ]

(* Inputs of sequential elements — reachable, but evaluated at the cycle
   boundary. *)
let seq_deps s =
  match kind s with
  | Reg { d; enable; clear; _ } ->
      (d :: Option.to_list enable) @ Option.to_list clear
  | Mem_read_sync (_, addr, enable) -> [ addr; enable ]
  | _ -> []

let mem_of s =
  match kind s with
  | Mem_read_async (m, _) | Mem_read_sync (m, _, _) -> Some m
  | _ -> None

let kind_name s =
  match kind s with
  | Const _ -> "const"
  | Input _ -> "input"
  | Wire _ -> "wire"
  | Op2 (op, _, _) -> (
      match op with
      | Add -> "add"
      | Sub -> "sub"
      | Mul -> "mul"
      | And -> "and"
      | Or -> "or"
      | Xor -> "xor"
      | Eq -> "eq"
      | Lt -> "lt")
  | Not _ -> "not"
  | Shift _ -> "shift"
  | Mux _ -> "mux"
  | Select _ -> "select"
  | Concat _ -> "concat"
  | Reg _ -> "reg"
  | Mem_read_async _ -> "mem-read-async"
  | Mem_read_sync _ -> "mem-read-sync"

let describe s =
  match name_of s with
  | Some n -> Printf.sprintf "signal #%d (%s, %s)" (uid s) n (kind_name s)
  | None -> Printf.sprintf "signal #%d (%s)" (uid s) (kind_name s)

let analyze ~name ~outputs =
  let diags = ref [] in
  let add ?loc ?hint ~rule msg =
    diags := Diag.make ?loc ?hint ~rule ~severity:Diag.Error msg :: !diags
  in
  (match outputs with [] -> add ~rule:"no-outputs" "no outputs" | _ -> ());
  let seen_ports = Hashtbl.create 8 in
  List.iter
    (fun (port, _) ->
      if Hashtbl.mem seen_ports port then
        add ~rule:"dup-output-port" ("duplicate output port " ^ port)
      else Hashtbl.add seen_ports port ())
    outputs;
  let visited = Hashtbl.create 256 in
  let all_nodes = ref [] in
  let memories : (int, Signal.Mem.mem) Hashtbl.t = Hashtbl.create 8 in
  (* Reach every node (combinational + sequential edges + memory write
     ports), recording the first consumer of each for error context. An
     unassigned wire is reported as a diagnostic and treated as a source
     so the rest of the graph can still be checked. *)
  let rec reach ~from s =
    if not (Hashtbl.mem visited (uid s)) then begin
      Hashtbl.add visited (uid s) ();
      all_nodes := s :: !all_nodes;
      (match kind s with
      | Wire r when Option.is_none !r ->
          add ~rule:"undriven-wire" ~loc:(describe s)
            ~hint:"drive the wire with Signal.assign before building the \
                   circuit"
            ("unassigned wire: " ^ describe s ^ ", first referenced by "
           ^ from)
      | _ -> ());
      (match mem_of s with
      | Some m ->
          if not (Hashtbl.mem memories (mem_uid m)) then begin
            Hashtbl.add memories (mem_uid m) m;
            let from = Printf.sprintf "memory %s write port" (mem_name m) in
            List.iter
              (fun wp ->
                reach ~from wp.wp_enable;
                reach ~from wp.wp_addr;
                reach ~from wp.wp_data)
              (mem_write_ports m)
          end
      | None -> ());
      let from = describe s in
      List.iter (reach ~from) (comb_deps s);
      List.iter (reach ~from) (seq_deps s)
    end
  in
  List.iter (fun (port, s) -> reach ~from:("output " ^ port) s) outputs;
  (* Topological sort of combinational dependencies, detecting cycles.
     [path] holds the grey ancestors, most recent first, so a back-edge
     can report the full cycle. *)
  let color = Hashtbl.create 256 in
  (* 1 = grey, 2 = black *)
  let topo = ref [] in
  let rec visit path s =
    match Hashtbl.find_opt color (uid s) with
    | Some 2 -> ()
    | Some _ ->
        (* dependency-ordered slice of [path] back to [s] *)
        let cycle =
          let rec upto acc = function
            | [] -> acc
            | x :: rest ->
                if uid x = uid s then x :: acc else upto (x :: acc) rest
          in
          upto [] path
        in
        add ~rule:"comb-loop" ~loc:(describe s)
          ~hint:"break the cycle with a register"
          ("combinational loop: "
          ^ String.concat " -> " (List.map describe (cycle @ [ s ])))
    | None ->
        Hashtbl.add color (uid s) 1;
        List.iter (visit (s :: path)) (comb_deps s);
        Hashtbl.replace color (uid s) 2;
        topo := s :: !topo
  in
  List.iter (visit []) !all_nodes;
  match List.rev !diags with
  | _ :: _ as diags -> Error diags
  | [] ->
      let topo = List.rev !topo in
      let inputs_tbl = Hashtbl.create 8 in
      let input_diags = ref [] in
      List.iter
        (fun s ->
          match kind s with
          | Input n -> (
              match Hashtbl.find_opt inputs_tbl n with
              | Some w when w <> width s ->
                  input_diags :=
                    Diag.make ~rule:"input-width-conflict"
                      ~severity:Diag.Error ~loc:(describe s)
                      ("input " ^ n ^ " used at two widths")
                    :: !input_diags
              | Some _ -> ()
              | None -> Hashtbl.add inputs_tbl n (width s))
          | _ -> ())
        !all_nodes;
      if !input_diags <> [] then Error (List.rev !input_diags)
      else
        let inputs =
          Hashtbl.fold (fun n w acc -> (n, w) :: acc) inputs_tbl []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        let registers =
          List.filter
            (fun s -> match kind s with Reg _ -> true | _ -> false)
            !all_nodes
        in
        let sync_reads =
          List.filter
            (fun s -> match kind s with Mem_read_sync _ -> true | _ -> false)
            !all_nodes
        in
        let memories = Hashtbl.fold (fun _ m acc -> m :: acc) memories [] in
        Ok { name; outputs; inputs; topo; registers; memories; sync_reads }

let create ~name ~outputs =
  match analyze ~name ~outputs with
  | Ok t -> t
  | Error (first :: rest) ->
      let extra =
        if rest = [] then ""
        else
          "\n"
          ^ String.concat "\n" (List.map (fun d -> d.Diag.message) rest)
      in
      failwith ("Circuit.create: " ^ first.Diag.message ^ extra)
  | Error [] -> assert false

let name t = t.name
let outputs t = t.outputs
let inputs t = t.inputs
let signals_in_topo_order t = t.topo
let registers t = t.registers
let memories t = t.memories
let sync_reads t = t.sync_reads

let stats t =
  let reg_bits =
    List.fold_left (fun acc r -> acc + Signal.width r) 0 t.registers
  in
  let mem_bits =
    List.fold_left (fun acc m -> acc + (mem_size m * mem_width m)) 0 t.memories
  in
  (* comb depth and max fanout, same definitions as Levelize (which cannot
     be called from here — it lives above Circuit); test_lint asserts the
     two stay in agreement *)
  let level = Hashtbl.create 256 in
  let comb_depth =
    List.fold_left
      (fun acc s ->
        let l =
          List.fold_left
            (fun m d -> max m (1 + Hashtbl.find level (uid d)))
            0 (comb_deps s)
        in
        Hashtbl.add level (uid s) l;
        max acc l)
      0 t.topo
  in
  let fanout = Hashtbl.create 256 in
  let load s =
    Hashtbl.replace fanout (uid s)
      (1 + Option.value ~default:0 (Hashtbl.find_opt fanout (uid s)))
  in
  List.iter
    (fun s ->
      List.iter load (comb_deps s);
      List.iter load (seq_deps s))
    t.topo;
  List.iter
    (fun m ->
      List.iter
        (fun wp ->
          load wp.wp_enable;
          load wp.wp_addr;
          load wp.wp_data)
        (mem_write_ports m))
    t.memories;
  let max_fanout = Hashtbl.fold (fun _ n acc -> max n acc) fanout 0 in
  [
    ("nodes", List.length t.topo);
    ("registers", List.length t.registers);
    ("register_bits", reg_bits);
    ("memories", List.length t.memories);
    ("memory_bits", mem_bits);
    ("inputs", List.length t.inputs);
    ("outputs", List.length t.outputs);
    ("comb_depth", comb_depth);
    ("max_fanout", max_fanout);
  ]
