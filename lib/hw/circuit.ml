open Signal

type t = {
  name : string;
  outputs : (string * Signal.t) list;
  inputs : (string * int) list;
  topo : Signal.t list;
  registers : Signal.t list;
  memories : Signal.Mem.mem list;
  sync_reads : Signal.t list;
}

(* Combinational fan-in of a node: the signals whose *current-cycle* value
   is needed to evaluate it. Registers and sync reads depend on state, not
   on their inputs, so they contribute nothing here. *)
let comb_deps s =
  match kind s with
  | Const _ | Input _ | Reg _ | Mem_read_sync _ -> []
  | Wire r -> ( match !r with Some d -> [ d ] | None -> [])
  | Op2 (_, a, b) -> [ a; b ]
  | Not a | Shift (_, _, a) | Select (_, _, a) -> [ a ]
  | Mux (sel, cases) -> sel :: cases
  | Concat parts -> parts
  | Mem_read_async (_, addr) -> [ addr ]

(* Inputs of sequential elements — reachable, but evaluated at the cycle
   boundary. *)
let seq_deps s =
  match kind s with
  | Reg { d; enable; clear; _ } ->
      (d :: Option.to_list enable) @ Option.to_list clear
  | Mem_read_sync (_, addr, enable) -> [ addr; enable ]
  | _ -> []

let mem_of s =
  match kind s with
  | Mem_read_async (m, _) | Mem_read_sync (m, _, _) -> Some m
  | _ -> None

let describe s =
  match name_of s with
  | Some n -> Printf.sprintf "signal #%d (%s)" (uid s) n
  | None -> Printf.sprintf "signal #%d" (uid s)

let create ~name ~outputs =
  (match outputs with [] -> failwith "Circuit.create: no outputs" | _ -> ());
  let seen_ports = Hashtbl.create 8 in
  List.iter
    (fun (port, _) ->
      if Hashtbl.mem seen_ports port then
        failwith ("Circuit.create: duplicate output port " ^ port);
      Hashtbl.add seen_ports port ())
    outputs;
  let visited = Hashtbl.create 256 in
  let all_nodes = ref [] in
  let memories : (int, Signal.Mem.mem) Hashtbl.t = Hashtbl.create 8 in
  (* Reach every node (combinational + sequential edges + memory write
     ports). *)
  let rec reach s =
    if not (Hashtbl.mem visited (uid s)) then begin
      Hashtbl.add visited (uid s) ();
      all_nodes := s :: !all_nodes;
      (match kind s with
      | Wire r when Option.is_none !r ->
          failwith ("Circuit.create: unassigned wire: " ^ describe s)
      | _ -> ());
      (match mem_of s with
      | Some m ->
          if not (Hashtbl.mem memories (mem_uid m)) then begin
            Hashtbl.add memories (mem_uid m) m;
            List.iter
              (fun wp ->
                reach wp.wp_enable;
                reach wp.wp_addr;
                reach wp.wp_data)
              (mem_write_ports m)
          end
      | None -> ());
      List.iter reach (comb_deps s);
      List.iter reach (seq_deps s)
    end
  in
  List.iter (fun (_, s) -> reach s) outputs;
  (* Topological sort of combinational dependencies, detecting cycles. *)
  let color = Hashtbl.create 256 in
  (* 0 = white (absent), 1 = grey, 2 = black *)
  let topo = ref [] in
  let rec visit s =
    match Hashtbl.find_opt color (uid s) with
    | Some 2 -> ()
    | Some _ -> failwith ("Circuit.create: combinational loop at " ^ describe s)
    | None ->
        Hashtbl.add color (uid s) 1;
        List.iter visit (comb_deps s);
        Hashtbl.replace color (uid s) 2;
        topo := s :: !topo
  in
  List.iter visit !all_nodes;
  let topo = List.rev !topo in
  let inputs_tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match kind s with
      | Input n -> (
          match Hashtbl.find_opt inputs_tbl n with
          | Some w when w <> width s ->
              failwith ("Circuit.create: input " ^ n ^ " used at two widths")
          | Some _ -> ()
          | None -> Hashtbl.add inputs_tbl n (width s))
      | _ -> ())
    !all_nodes;
  let inputs =
    Hashtbl.fold (fun n w acc -> (n, w) :: acc) inputs_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let registers =
    List.filter (fun s -> match kind s with Reg _ -> true | _ -> false) !all_nodes
  in
  let sync_reads =
    List.filter
      (fun s -> match kind s with Mem_read_sync _ -> true | _ -> false)
      !all_nodes
  in
  let memories = Hashtbl.fold (fun _ m acc -> m :: acc) memories [] in
  { name; outputs; inputs; topo; registers; memories; sync_reads }

let name t = t.name
let outputs t = t.outputs
let inputs t = t.inputs
let signals_in_topo_order t = t.topo
let registers t = t.registers
let memories t = t.memories
let sync_reads t = t.sync_reads

let stats t =
  let reg_bits =
    List.fold_left (fun acc r -> acc + Signal.width r) 0 t.registers
  in
  let mem_bits =
    List.fold_left (fun acc m -> acc + (mem_size m * mem_width m)) 0 t.memories
  in
  [
    ("nodes", List.length t.topo);
    ("registers", List.length t.registers);
    ("register_bits", reg_bits);
    ("memories", List.length t.memories);
    ("memory_bits", mem_bits);
    ("inputs", List.length t.inputs);
    ("outputs", List.length t.outputs);
  ]
