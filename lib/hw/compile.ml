(* Compiled cycle-accurate simulator: the Levelize.t array specialized at
   create time into one closure per node over dense slot-indexed value
   arrays. Signals of width <= 62 live in a plain int array (OCaml's
   63-bit int, masked, so the stored value is always the canonical
   non-negative bitvector); wider signals fall back to Bits.t limbs. The
   evaluation model is Cyclesim's: settle in slot order (dependencies
   always resolve to lower slots), then latch — registers
   read-before-write, synchronous memory reads latch the pre-write
   contents, memory writes commit last. *)

open Signal

let fast_width = 62
let mask_of w = if w >= 62 then max_int else (1 lsl w) - 1

type mem_store = M_fast of int array | M_wide of Bits.t array

type t = {
  lv : Levelize.t;
  widths : int array; (* per-slot signal width *)
  fast : bool array; (* per-slot: value lives in [ivals]? *)
  ivals : int array; (* settled values, single-word slots *)
  wvals : Bits.t array; (* settled values, wide slots *)
  prog : (unit -> unit) array; (* settle program, slot order *)
  latch : (unit -> unit) array; (* buffer next reg/sync values *)
  commit : (unit -> unit) array; (* mem writes, then reg/sync state *)
  in_slots : (string, int list) Hashtbl.t; (* input name -> its slots *)
  out_slots : (string * int) list;
  mems : (int, mem_store) Hashtbl.t; (* mem uid -> contents *)
  mutable cycle : int;
  mutable settled : bool;
}

let bits_of_fast ~width v = Bits.of_int ~width v

let create circuit =
  let lv = Levelize.of_circuit circuit in
  let nodes = Levelize.nodes lv in
  let n = Array.length nodes in
  let widths = Array.map (fun nd -> width nd.Levelize.n_signal) nodes in
  let fast = Array.map (fun w -> w <= fast_width) widths in
  let ivals = Array.make n 0 in
  let wvals =
    Array.init n (fun i -> if fast.(i) then Bits.zero 0 else Bits.zero widths.(i))
  in
  let mems = Hashtbl.create 8 in
  List.iter
    (fun m ->
      Hashtbl.add mems (mem_uid m)
        (if mem_width m <= fast_width then M_fast (Array.make (mem_size m) 0)
         else M_wide (Array.make (mem_size m) (Bits.zero (mem_width m)))))
    (Circuit.memories circuit);
  (* exact for widths <= 62 after canonicalization *)
  let to_fast b = Bits.to_int_trunc b in
  let read_int slot =
    if fast.(slot) then fun () -> ivals.(slot)
    else fun () -> Bits.to_int_trunc wvals.(slot)
  in
  let read_bits slot =
    if fast.(slot) then
      let w = widths.(slot) in
      fun () -> bits_of_fast ~width:w ivals.(slot)
    else fun () -> wvals.(slot)
  in
  let prog = ref [] in
  let emit f = prog := f :: !prog in
  let latches = ref [] in
  let commits = ref [] in
  let in_slots = Hashtbl.create 8 in
  Array.iter
    (fun nd ->
      let g = nd.Levelize.n_signal in
      let s = nd.Levelize.n_slot in
      let deps = nd.Levelize.n_deps in
      let w = widths.(s) in
      let m = mask_of w in
      match kind g with
      | Const b -> if fast.(s) then ivals.(s) <- to_fast b else wvals.(s) <- b
      | Input name ->
          Hashtbl.replace in_slots name
            (s :: Option.value ~default:[] (Hashtbl.find_opt in_slots name))
      | Wire r -> (
          match !r with
          | None ->
              invalid_arg
                ("Hw.Compile.create: unconnected wire: " ^ Circuit.describe g)
          | Some _ ->
              let d = deps.(0) in
              if fast.(s) then emit (fun () -> ivals.(s) <- ivals.(d))
              else emit (fun () -> wvals.(s) <- wvals.(d)))
      | Op2 (op, _, _) ->
          let a = deps.(0) and b = deps.(1) in
          if fast.(a) then (
            match op with
            | Add -> emit (fun () -> ivals.(s) <- (ivals.(a) + ivals.(b)) land m)
            | Sub -> emit (fun () -> ivals.(s) <- (ivals.(a) - ivals.(b)) land m)
            | Mul -> emit (fun () -> ivals.(s) <- ivals.(a) * ivals.(b) land m)
            | And -> emit (fun () -> ivals.(s) <- ivals.(a) land ivals.(b))
            | Or -> emit (fun () -> ivals.(s) <- ivals.(a) lor ivals.(b))
            | Xor -> emit (fun () -> ivals.(s) <- ivals.(a) lxor ivals.(b))
            | Eq ->
                emit (fun () ->
                    ivals.(s) <- (if ivals.(a) = ivals.(b) then 1 else 0))
            | Lt ->
                emit (fun () ->
                    ivals.(s) <- (if ivals.(a) < ivals.(b) then 1 else 0)))
          else (
            match op with
            | Add -> emit (fun () -> wvals.(s) <- Bits.add wvals.(a) wvals.(b))
            | Sub -> emit (fun () -> wvals.(s) <- Bits.sub wvals.(a) wvals.(b))
            | Mul -> emit (fun () -> wvals.(s) <- Bits.mul wvals.(a) wvals.(b))
            | And ->
                emit (fun () -> wvals.(s) <- Bits.logand wvals.(a) wvals.(b))
            | Or -> emit (fun () -> wvals.(s) <- Bits.logor wvals.(a) wvals.(b))
            | Xor ->
                emit (fun () -> wvals.(s) <- Bits.logxor wvals.(a) wvals.(b))
            | Eq ->
                emit (fun () ->
                    ivals.(s) <- (if Bits.equal wvals.(a) wvals.(b) then 1 else 0))
            | Lt ->
                emit (fun () ->
                    ivals.(s) <- (if Bits.lt wvals.(a) wvals.(b) then 1 else 0)))
      | Not _ ->
          let a = deps.(0) in
          if fast.(s) then
            emit (fun () -> ivals.(s) <- Stdlib.lnot ivals.(a) land m)
          else emit (fun () -> wvals.(s) <- Bits.lognot wvals.(a))
      | Shift (dir, k, _) -> (
          let a = deps.(0) in
          if fast.(s) then
            if k = 0 then emit (fun () -> ivals.(s) <- ivals.(a))
            else if k >= w then (
              match dir with
              | Sll | Srl -> emit (fun () -> ivals.(s) <- 0)
              | Sra ->
                  let sign_bit = 1 lsl (w - 1) in
                  emit (fun () ->
                      ivals.(s) <-
                        (if ivals.(a) land sign_bit <> 0 then m else 0)))
            else
              match dir with
              | Sll -> emit (fun () -> ivals.(s) <- ivals.(a) lsl k land m)
              | Srl -> emit (fun () -> ivals.(s) <- ivals.(a) lsr k)
              | Sra ->
                  (* sign-extend into the 63-bit word, shift, re-mask *)
                  let up = 63 - w in
                  emit (fun () ->
                      ivals.(s) <- (ivals.(a) lsl up) asr (up + k) land m)
          else
            match dir with
            | Sll -> emit (fun () -> wvals.(s) <- Bits.shift_left wvals.(a) k)
            | Srl -> emit (fun () -> wvals.(s) <- Bits.shift_right wvals.(a) k)
            | Sra ->
                emit (fun () -> wvals.(s) <- Bits.shift_right_arith wvals.(a) k))
      | Mux _ ->
          let sel = deps.(0) in
          let cases = Array.sub deps 1 (Array.length deps - 1) in
          let nc = Array.length cases in
          if fast.(s) then
            if nc = 2 && fast.(sel) && widths.(sel) = 1 then (
              let c0 = cases.(0) and c1 = cases.(1) in
              emit (fun () ->
                  ivals.(s) <- (if ivals.(sel) = 0 then ivals.(c0) else ivals.(c1))))
            else
              let read_sel = read_int sel in
              emit (fun () ->
                  let i = read_sel () in
                  ivals.(s) <- ivals.(cases.(if i >= nc then nc - 1 else i)))
          else
            let read_sel = read_int sel in
            emit (fun () ->
                let i = read_sel () in
                wvals.(s) <- wvals.(cases.(if i >= nc then nc - 1 else i)))
      | Select (hi, lo, _) ->
          let a = deps.(0) in
          if fast.(s) then
            if fast.(a) then emit (fun () -> ivals.(s) <- ivals.(a) lsr lo land m)
            else emit (fun () -> ivals.(s) <- Bits.extract_int wvals.(a) ~lo ~width:w)
          else emit (fun () -> wvals.(s) <- Bits.slice wvals.(a) ~hi ~lo)
      | Concat _ ->
          if fast.(s) then (
            (* head of the list = most-significant bits *)
            let k = Array.length deps in
            let shifts = Array.make k 0 in
            let off = ref 0 in
            for i = k - 1 downto 0 do
              shifts.(i) <- !off;
              off := !off + widths.(deps.(i))
            done;
            emit (fun () ->
                let v = ref 0 in
                for i = 0 to k - 1 do
                  v := !v lor (ivals.(deps.(i)) lsl shifts.(i))
                done;
                ivals.(s) <- !v))
          else
            let getters = List.map read_bits (Array.to_list deps) in
            emit (fun () ->
                wvals.(s) <- Bits.concat_list (List.map (fun f -> f ()) getters))
      | Mem_read_async (mm, _) ->
          let read_addr = read_int deps.(0) in
          let size = mem_size mm in
          (match Hashtbl.find mems (mem_uid mm) with
          | M_fast arr ->
              emit (fun () ->
                  let a = read_addr () in
                  ivals.(s) <- (if a < size then arr.(a) else 0))
          | M_wide arr ->
              let z = Bits.zero (mem_width mm) in
              emit (fun () ->
                  let a = read_addr () in
                  wvals.(s) <- (if a < size then arr.(a) else z)))
      | Reg spec ->
          let ds = Levelize.slot_of lv spec.d in
          let enabled =
            match spec.enable with
            | None -> fun () -> true
            | Some e ->
                let es = Levelize.slot_of lv e in
                fun () -> ivals.(es) <> 0
          in
          let cleared =
            match spec.clear with
            | None -> fun () -> false
            | Some c ->
                let cs = Levelize.slot_of lv c in
                fun () -> ivals.(cs) <> 0
          in
          if fast.(s) then (
            ivals.(s) <- to_fast spec.init;
            let init_i = to_fast spec.init in
            let pend = ref 0 and armed = ref false in
            latches :=
              (fun () ->
                if cleared () then (pend := init_i; armed := true)
                else if enabled () then (pend := ivals.(ds); armed := true)
                else armed := false)
              :: !latches;
            commits :=
              (fun () -> if !armed then ivals.(s) <- !pend) :: !commits)
          else (
            wvals.(s) <- spec.init;
            let pend = ref spec.init and armed = ref false in
            latches :=
              (fun () ->
                if cleared () then (pend := spec.init; armed := true)
                else if enabled () then (pend := wvals.(ds); armed := true)
                else armed := false)
              :: !latches;
            commits :=
              (fun () -> if !armed then wvals.(s) <- !pend) :: !commits)
      | Mem_read_sync (mm, addr, enable) -> (
          let read_addr =
            let as_ = Levelize.slot_of lv addr in
            read_int as_
          in
          let es = Levelize.slot_of lv enable in
          let size = mem_size mm in
          match Hashtbl.find mems (mem_uid mm) with
          | M_fast arr ->
              let pend = ref 0 and armed = ref false in
              latches :=
                (fun () ->
                  if ivals.(es) <> 0 then (
                    let a = read_addr () in
                    pend := (if a < size then arr.(a) else 0);
                    armed := true)
                  else armed := false)
                :: !latches;
              commits :=
                (fun () -> if !armed then ivals.(s) <- !pend) :: !commits
          | M_wide arr ->
              let z = Bits.zero (mem_width mm) in
              let pend = ref z and armed = ref false in
              latches :=
                (fun () ->
                  if ivals.(es) <> 0 then (
                    pend := (let a = read_addr () in
                             if a < size then arr.(a) else z);
                    armed := true)
                  else armed := false)
                :: !latches;
              commits :=
                (fun () -> if !armed then wvals.(s) <- !pend) :: !commits))
    nodes;
  (* memory write ports commit after every reg/sync next is buffered but
     before state commits — read-first order, last port wins per address *)
  let mem_commits = ref [] in
  List.iter
    (fun mm ->
      let store = Hashtbl.find mems (mem_uid mm) in
      let size = mem_size mm in
      List.iter
        (fun wp ->
          let es = Levelize.slot_of lv wp.wp_enable in
          let read_addr = read_int (Levelize.slot_of lv wp.wp_addr) in
          let dsl = Levelize.slot_of lv wp.wp_data in
          match store with
          | M_fast arr ->
              mem_commits :=
                (fun () ->
                  if ivals.(es) <> 0 then
                    let a = read_addr () in
                    if a < size then arr.(a) <- ivals.(dsl))
                :: !mem_commits
          | M_wide arr ->
              mem_commits :=
                (fun () ->
                  if ivals.(es) <> 0 then
                    let a = read_addr () in
                    if a < size then arr.(a) <- wvals.(dsl))
                :: !mem_commits)
        (mem_write_ports mm))
    (Circuit.memories circuit);
  {
    lv;
    widths;
    fast;
    ivals;
    wvals;
    prog = Array.of_list (List.rev !prog);
    latch = Array.of_list (List.rev !latches);
    commit = Array.of_list (List.rev !mem_commits @ List.rev !commits);
    in_slots;
    out_slots =
      List.map
        (fun (name, sg) -> (name, Levelize.slot_of lv sg))
        (Circuit.outputs circuit);
    mems;
    cycle = 0;
    settled = false;
  }

let settle t =
  let p = t.prog in
  for i = 0 to Array.length p - 1 do
    p.(i) ()
  done;
  t.settled <- true

let step t =
  if not t.settled then settle t;
  let l = t.latch in
  for i = 0 to Array.length l - 1 do
    l.(i) ()
  done;
  let c = t.commit in
  for i = 0 to Array.length c - 1 do
    c.(i) ()
  done;
  t.cycle <- t.cycle + 1;
  t.settled <- false;
  settle t

let set_input t name v =
  match Hashtbl.find_opt t.in_slots name with
  | None -> raise Not_found
  | Some slots ->
      let w = t.widths.(List.hd slots) in
      if Bits.width v <> w then
        invalid_arg
          (Printf.sprintf "Compile.set_input %s: width %d, expected %d" name
             (Bits.width v) w);
      List.iter
        (fun s ->
          if t.fast.(s) then t.ivals.(s) <- Bits.to_int_trunc v
          else t.wvals.(s) <- v)
        slots;
      t.settled <- false

let set_input_int t name v =
  match Hashtbl.find_opt t.in_slots name with
  | None -> raise Not_found
  | Some slots ->
      set_input t name (Bits.of_int ~width:t.widths.(List.hd slots) v)

let value_of_slot t s =
  if t.fast.(s) then bits_of_fast ~width:t.widths.(s) t.ivals.(s)
  else t.wvals.(s)

let output t name =
  if not t.settled then settle t;
  match List.assoc_opt name t.out_slots with
  | Some s -> value_of_slot t s
  | None -> raise Not_found

let output_int t name =
  if not t.settled then settle t;
  match List.assoc_opt name t.out_slots with
  | Some s -> if t.fast.(s) then t.ivals.(s) else Bits.to_int t.wvals.(s)
  | None -> raise Not_found

let peek t s =
  if not t.settled then settle t;
  value_of_slot t (Levelize.slot_of t.lv s)

let cycle t = t.cycle

let read_memory t m addr =
  let store = Hashtbl.find t.mems (mem_uid m) in
  if addr < 0 || addr >= mem_size m then invalid_arg "read_memory: range";
  match store with
  | M_fast arr -> bits_of_fast ~width:(mem_width m) arr.(addr)
  | M_wide arr -> arr.(addr)

let write_memory t m addr v =
  let store = Hashtbl.find t.mems (mem_uid m) in
  if addr < 0 || addr >= mem_size m then invalid_arg "write_memory: range";
  if Bits.width v <> mem_width m then invalid_arg "write_memory: width";
  (match store with
  | M_fast arr -> arr.(addr) <- Bits.to_int_trunc v
  | M_wide arr -> arr.(addr) <- v);
  t.settled <- false
