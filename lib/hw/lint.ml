open Signal

let rules =
  [
    ("undriven-wire", Diag.Error, "a wire with no driver evaluates to X");
    ("comb-loop", Diag.Error, "combinational cycles cannot be scheduled");
    ("dup-output-port", Diag.Error, "output port names must be unique");
    ("no-outputs", Diag.Error, "a circuit must expose at least one output");
    ( "input-width-conflict",
      Diag.Error,
      "one input name used at two different widths" );
    ( "dead-logic",
      Diag.Warning,
      "constructed logic that cannot reach any output is silently dropped" );
    ( "mux-sel-wide",
      Diag.Warning,
      "out-of-range selector encodings clamp to the last case" );
    ( "async-read-mapping",
      Diag.Warning,
      "BRAM/URAM reads are synchronous; large async-read memories only map \
       to distributed RAM" );
    ( "mem-addr-wide",
      Diag.Warning,
      "address bits beyond the memory depth are range-checked at simulation \
       time only" );
    ( "write-port-overlap",
      Diag.Warning,
      "simultaneous writes to one address are last-port-wins" );
    ( "unnamed-state",
      Diag.Info,
      "unnamed registers/memories hurt VCD and Verilog readability" );
    ( "const-foldable",
      Diag.Info,
      "constant subtrees waste nodes; Hw.Opt.constant_fold removes them" );
    ( "read-before-init",
      Diag.Warning,
      "an uninitialized memory read (X under 4-state semantics) reaches an \
       output or a write enable" );
    ( "const-output",
      Diag.Warning,
      "an output is provably constant on every cycle for every input" );
    ( "dead-mux-arm",
      Diag.Warning,
      "a mux selector is provably constant, so the other arms are \
       unreachable" );
    ( "redundant-reset",
      Diag.Info,
      "a register's data input provably equals its reset value, so the \
       clear term does nothing" );
    ( "dataflow-opt-divergence",
      Diag.Error,
      "Hw.Opt and Hw.Dataflow disagree about a constant output — a \
       soundness bug in one of the analyses" );
  ]

let default_lutram_max_bits = 1024

let warn ?loc ?hint rule msg =
  Diag.make ?loc ?hint ~rule ~severity:Diag.Warning msg

let info ?loc ?hint rule msg = Diag.make ?loc ?hint ~rule ~severity:Diag.Info msg

(* bits needed to address [n] mux cases *)
let sel_bits_for n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

(* ---- rule passes over a well-formed circuit ---- *)

let mux_rules c =
  List.filter_map
    (fun s ->
      match kind s with
      | Mux (sel, cases) ->
          let n = List.length cases in
          let needed = sel_bits_for n in
          if width sel > needed then
            Some
              (warn ~loc:(Circuit.describe s)
                 ~hint:
                   (Printf.sprintf
                      "narrow the selector to %d bit(s) or add the missing \
                       cases"
                      needed)
                 "mux-sel-wide"
                 (Printf.sprintf
                    "%d-bit selector for %d case(s): selector values >= %d \
                     clamp to the last case"
                    (width sel) n n))
          else None
      | _ -> None)
    (Circuit.signals_in_topo_order c)

let memory_rules ~lutram_max_bits c =
  let mems = Circuit.memories c in
  let topo = Circuit.signals_in_topo_order c in
  (* async-read-mapping: one diagnostic per offending memory *)
  let async_read m =
    List.exists
      (fun s ->
        match kind s with
        | Mem_read_async (m', _) -> mem_uid m' = mem_uid m
        | _ -> false)
      topo
  in
  let mapping =
    List.filter_map
      (fun m ->
        let bits = mem_size m * mem_width m in
        if bits > lutram_max_bits && async_read m then
          Some
            (warn
               ~loc:(Printf.sprintf "memory %s" (mem_name m))
               ~hint:"use Mem.read_sync (one-cycle latency) so the memory \
                      can map to BRAM/URAM"
               "async-read-mapping"
               (Printf.sprintf
                  "asynchronous read of a %dx%d memory (%d bits > %d-bit \
                   distributed-RAM budget) cannot map to BRAM/URAM"
                  (mem_size m) (mem_width m) bits lutram_max_bits))
        else None)
      mems
  in
  (* mem-addr-wide: check every port address against the depth *)
  let addr_wide =
    let port_addrs m =
      List.map (fun wp -> ("write", wp.wp_addr)) (mem_write_ports m)
      @ List.filter_map
          (fun s ->
            match kind s with
            | Mem_read_async (m', addr) when mem_uid m' = mem_uid m ->
                Some ("async read", addr)
            | Mem_read_sync (m', addr, _) when mem_uid m' = mem_uid m ->
                Some ("sync read", addr)
            | _ -> None)
          topo
    in
    List.concat_map
      (fun m ->
        let needed = mem_addr_bits m in
        List.filter_map
          (fun (port, addr) ->
            if width addr > needed then
              Some
                (warn
                   ~loc:(Printf.sprintf "memory %s" (mem_name m))
                   ~hint:
                     (Printf.sprintf "truncate the address to %d bit(s)"
                        needed)
                   "mem-addr-wide"
                   (Printf.sprintf
                      "%s port address is %d bits wide but %d entries only \
                       need %d"
                      port (width addr) (mem_size m) needed))
            else None)
          (port_addrs m))
      mems
  in
  (* write-port-overlap: pairwise enables that are not provably exclusive *)
  let never s = match kind s with Const b -> Bits.is_zero b | _ -> false in
  let complementary a b =
    match (kind a, kind b) with
    | Not x, _ when uid x = uid b -> true
    | _, Not x when uid x = uid a -> true
    | Op2 (Eq, x1, c1), Op2 (Eq, x2, c2) -> (
        (* FSM idiom: (state == K1) vs (state == K2), K1 <> K2 *)
        let const_of s = match kind s with Const b -> Some b | _ -> None in
        let subject_const p q =
          match (const_of p, const_of q) with
          | None, Some c -> Some (uid p, c)
          | Some c, None -> Some (uid q, c)
          | _ -> None
        in
        match (subject_const x1 c1, subject_const x2 c2) with
        | Some (s1, k1), Some (s2, k2) -> s1 = s2 && not (Bits.equal k1 k2)
        | _ -> false)
    | _ -> false
  in
  let distinct_const_addrs p q =
    match (kind p.wp_addr, kind q.wp_addr) with
    | Const a, Const b -> not (Bits.equal a b)
    | _ -> false
  in
  let overlap =
    List.concat_map
      (fun m ->
        let ports = Array.of_list (mem_write_ports m) in
        let ds = ref [] in
        for i = 0 to Array.length ports - 1 do
          for j = i + 1 to Array.length ports - 1 do
            let p = ports.(i) and q = ports.(j) in
            if
              not
                (never p.wp_enable || never q.wp_enable
                || complementary p.wp_enable q.wp_enable
                || distinct_const_addrs p q)
            then
              ds :=
                warn
                  ~loc:(Printf.sprintf "memory %s" (mem_name m))
                  ~hint:"gate the enables so at most one port can write a \
                         given address per cycle"
                  "write-port-overlap"
                  (Printf.sprintf
                     "write ports %d and %d have enables that may be high \
                      simultaneously (last port wins on an address clash)"
                     i j)
                :: !ds
          done
        done;
        List.rev !ds)
      mems
  in
  mapping @ addr_wide @ overlap

let naming_rules c =
  let regs = Circuit.registers c in
  let unnamed_regs =
    List.length (List.filter (fun r -> name_of r = None) regs)
  in
  let auto_named m =
    (* Mem.create's fallback names are "mem_<uid>" *)
    let n = mem_name m in
    String.length n > 4
    && String.sub n 0 4 = "mem_"
    && String.for_all
         (fun ch -> ch >= '0' && ch <= '9')
         (String.sub n 4 (String.length n - 4))
  in
  let reg_diag =
    if unnamed_regs = 0 then []
    else
      [
        info ~hint:"name state with Signal.( -- ) and Mem.create ~name"
          "unnamed-state"
          (Printf.sprintf
             "%d of %d register(s) are unnamed and will appear as s_<uid> \
              in VCD/Verilog output"
             unnamed_regs (List.length regs));
      ]
  in
  let mem_diags =
    List.filter_map
      (fun m ->
        if auto_named m then
          Some
            (info
               ~loc:(Printf.sprintf "memory %s" (mem_name m))
               ~hint:"pass ~name to Mem.create" "unnamed-state"
               "memory uses an auto-generated name")
        else None)
      (Circuit.memories c)
  in
  reg_diag @ mem_diags

let fold_rule c =
  let before = Opt.node_count c in
  let after = Opt.node_count (Opt.constant_fold c) in
  if after < before then
    [
      info ~hint:"run Hw.Opt.constant_fold before emitting Verilog"
        "const-foldable"
        (Printf.sprintf
           "constant folding would shrink the netlist from %d to %d nodes"
           before after);
    ]
  else []

let dataflow_rules c =
  let df = Dataflow.run (Levelize.of_circuit c) in
  Dataflow.lint df @ Dataflow.crosscheck df

let circuit ?(lutram_max_bits = default_lutram_max_bits) c =
  mux_rules c
  @ memory_rules ~lutram_max_bits c
  @ naming_rules c @ fold_rule c @ dataflow_rules c

(* ---- dead logic: needs the set of constructed signals ---- *)

let dead_logic ~tracked c =
  match tracked with
  | [] -> []
  | _ ->
      let reachable = Hashtbl.create 256 in
      List.iter
        (fun s -> Hashtbl.replace reachable (uid s) ())
        (Circuit.signals_in_topo_order c);
      let interesting s =
        name_of s <> None
        ||
        match kind s with
        | Reg _ | Mem_read_async _ | Mem_read_sync _ | Input _ -> true
        | _ -> false
      in
      List.filter_map
        (fun s ->
          if (not (Hashtbl.mem reachable (uid s))) && interesting s then
            Some
              (warn ~loc:(Circuit.describe s)
                 ~hint:"connect it to an output or delete it" "dead-logic"
                 "constructed but cannot reach any circuit output")
          else None)
        tracked

let graph ?(lutram_max_bits = default_lutram_max_bits) ?(tracked = []) ~name
    outputs =
  match Circuit.analyze ~name ~outputs with
  | Error diags -> diags
  | Ok c -> circuit ~lutram_max_bits c @ dead_logic ~tracked c
