(** Static timing analysis over a {!Levelize}d circuit.

    No synthesis, no placement — just a per-primitive delay model summed
    along the levelized dependency chains, the same first-order estimate a
    composer can afford to run on every build. Two models:

    - [Unit]: every combinational primitive costs 1, wiring/slicing
      included, so the worst arrival time equals {!Levelize.comb_depth} —
      a pure logic-depth count.
    - [Typical] (default): free wiring ([Wire]/[Select]/[Concat]/[Shift]
      are routing, not logic), 1 for bitwise gates and muxes, 2 for
      add/sub/compare carry chains, 4 for a multiplier, 2 for an
      asynchronous memory read (distributed-RAM access). Sources
      (constants, inputs, registers, synchronous reads) launch at 0.

    The numbers are unit-less "levels of logic", not picoseconds: they
    rank paths and designs, and [Beethoven.Check] turns them into a DRC
    by taxing paths on cores placed across SLR boundaries
    ({!Floorplan.slr_of}) with the interconnect crossing penalty. *)

type model = Unit | Typical

val model_name : model -> string
(** ["unit"] / ["typical"]. *)

val delay_of : model -> Signal.t -> int

type path_node = {
  pn_signal : Signal.t;
  pn_delay : int;  (** this node's own delay *)
  pn_arrival : int;  (** cumulative delay up to and including this node *)
}

type report = {
  r_circuit : string;
  r_model : model;
  r_nodes : int;
  r_comb_depth : int;  (** levels of the levelized array *)
  r_max_delay : int;  (** worst arrival time under the model *)
  r_worst_path : path_node list;
      (** launch point first, endpoint last; deterministic (ties broken
          by lowest slot) *)
  r_outputs : (string * int * int) list;
      (** per-output [(name, depth, delay)] in port order *)
  r_hotspots : (Levelize.node * int) list;
      (** highest-fanout nodes with their fanout, descending *)
}

val analyze : ?model:model -> ?hotspots:int -> Levelize.t -> report
(** [hotspots] bounds the fanout table (default 5). *)

val of_circuit : ?model:model -> ?hotspots:int -> Circuit.t -> report

val render : report -> string
(** Human-readable tables: summary, worst path (signal / kind / delay /
    arrival), per-output depths, fanout hotspots. *)

val to_json : report -> string
(** Stable single-line JSON schema:
    [{"circuit":…,"model":…,"nodes":…,"comb_depth":…,"max_delay":…,
    "worst_path":[{"signal":…,"kind":…,"delay":…,"arrival":…}…],
    "outputs":[{"name":…,"depth":…,"delay":…}…],
    "hotspots":[{"signal":…,"fanout":…}…]}]. *)
