open Signal

type t = {
  circuit : Circuit.t;
  values : (int, Bits.t) Hashtbl.t; (* signal uid -> settled value *)
  inputs : (string, Bits.t ref) Hashtbl.t;
  reg_state : (int, Bits.t) Hashtbl.t; (* reg uid -> current state *)
  sync_state : (int, Bits.t) Hashtbl.t; (* sync-read uid -> latched value *)
  mem_state : (int, Bits.t array) Hashtbl.t; (* mem uid -> contents *)
  mutable cycle : int;
  mutable settled : bool;
}

let create circuit =
  let inputs = Hashtbl.create 8 in
  List.iter
    (fun (n, w) -> Hashtbl.add inputs n (ref (Bits.zero w)))
    (Circuit.inputs circuit);
  let reg_state = Hashtbl.create 32 in
  List.iter
    (fun r ->
      match kind r with
      | Reg spec -> Hashtbl.add reg_state (uid r) spec.init
      | _ -> assert false)
    (Circuit.registers circuit);
  let sync_state = Hashtbl.create 8 in
  List.iter
    (fun s -> Hashtbl.add sync_state (uid s) (Bits.zero (width s)))
    (Circuit.sync_reads circuit);
  let mem_state = Hashtbl.create 8 in
  List.iter
    (fun m ->
      Hashtbl.add mem_state (mem_uid m)
        (Array.make (mem_size m) (Bits.zero (mem_width m))))
    (Circuit.memories circuit);
  {
    circuit;
    values = Hashtbl.create 256;
    inputs;
    reg_state;
    sync_state;
    mem_state;
    cycle = 0;
    settled = false;
  }

let set_input t name v =
  match Hashtbl.find_opt t.inputs name with
  | None -> raise Not_found
  | Some r ->
      if Bits.width v <> Bits.width !r then
        invalid_arg
          (Printf.sprintf "Cyclesim.set_input %s: width %d, expected %d" name
             (Bits.width v) (Bits.width !r));
      r := v;
      t.settled <- false

let set_input_int t name v =
  match Hashtbl.find_opt t.inputs name with
  | None -> raise Not_found
  | Some r -> set_input t name (Bits.of_int ~width:(Bits.width !r) v)

let value t s = Hashtbl.find t.values (uid s)

let mem_read t m addr_bits =
  let contents = Hashtbl.find t.mem_state (mem_uid m) in
  let addr = Bits.to_int_trunc addr_bits in
  if addr < mem_size m then contents.(addr) else Bits.zero (mem_width m)

let eval t s =
  match kind s with
  | Const b -> b
  | Input n -> !(Hashtbl.find t.inputs n)
  | Wire r -> (
      match !r with
      | Some d -> value t d
      | None ->
          invalid_arg
            ("Cyclesim.eval: unconnected wire: " ^ Circuit.describe s))
  | Op2 (op, a, b) -> (
      let va = value t a and vb = value t b in
      match op with
      | Add -> Bits.add va vb
      | Sub -> Bits.sub va vb
      | Mul -> Bits.mul va vb
      | And -> Bits.logand va vb
      | Or -> Bits.logor va vb
      | Xor -> Bits.logxor va vb
      | Eq -> if Bits.equal va vb then Bits.one 1 else Bits.zero 1
      | Lt -> if Bits.lt va vb then Bits.one 1 else Bits.zero 1)
  | Not a -> Bits.lognot (value t a)
  | Shift (dir, n, a) -> (
      let v = value t a in
      match dir with
      | Sll -> Bits.shift_left v n
      | Srl -> Bits.shift_right v n
      | Sra -> Bits.shift_right_arith v n)
  | Mux (sel, cases) ->
      let idx = Bits.to_int_trunc (value t sel) in
      let n = List.length cases in
      let idx = if idx >= n then n - 1 else idx in
      value t (List.nth cases idx)
  | Select (hi, lo, a) -> Bits.slice (value t a) ~hi ~lo
  | Concat parts ->
      Bits.concat_list (List.map (fun p -> value t p) parts)
  | Reg _ -> Hashtbl.find t.reg_state (uid s)
  | Mem_read_sync _ -> Hashtbl.find t.sync_state (uid s)
  | Mem_read_async (m, addr) -> mem_read t m (value t addr)

let settle t =
  List.iter
    (fun s -> Hashtbl.replace t.values (uid s) (eval t s))
    (Circuit.signals_in_topo_order t.circuit);
  t.settled <- true

let is_high b = not (Bits.is_zero b)

let step t =
  if not t.settled then settle t;
  (* Compute next register values against settled combinational state. *)
  let reg_next =
    List.filter_map
      (fun r ->
        match kind r with
        | Reg spec ->
            let enabled =
              match spec.enable with None -> true | Some e -> is_high (value t e)
            in
            let cleared =
              match spec.clear with None -> false | Some c -> is_high (value t c)
            in
            if cleared then Some (uid r, spec.init)
            else if enabled then Some (uid r, value t spec.d)
            else None
        | _ -> None)
      (Circuit.registers t.circuit)
  in
  (* Sync memory reads latch the pre-write (read-first) contents. *)
  let sync_next =
    List.filter_map
      (fun s ->
        match kind s with
        | Mem_read_sync (m, addr, enable) ->
            if is_high (value t enable) then
              Some (uid s, mem_read t m (value t addr))
            else None
        | _ -> None)
      (Circuit.sync_reads t.circuit)
  in
  (* Memory writes commit last. *)
  List.iter
    (fun m ->
      let contents = Hashtbl.find t.mem_state (mem_uid m) in
      List.iter
        (fun wp ->
          if is_high (value t wp.wp_enable) then begin
            let addr = Bits.to_int_trunc (value t wp.wp_addr) in
            if addr < mem_size m then contents.(addr) <- value t wp.wp_data
          end)
        (mem_write_ports m))
    (Circuit.memories t.circuit);
  List.iter (fun (id, v) -> Hashtbl.replace t.reg_state id v) reg_next;
  List.iter (fun (id, v) -> Hashtbl.replace t.sync_state id v) sync_next;
  t.cycle <- t.cycle + 1;
  t.settled <- false;
  settle t

let output t name =
  if not t.settled then settle t;
  match List.assoc_opt name (Circuit.outputs t.circuit) with
  | Some s -> value t s
  | None -> raise Not_found

let output_int t name = Bits.to_int (output t name)

let peek t s =
  if not t.settled then settle t;
  value t s

let cycle t = t.cycle

let read_memory t m addr =
  let contents = Hashtbl.find t.mem_state (mem_uid m) in
  if addr < 0 || addr >= mem_size m then invalid_arg "read_memory: range";
  contents.(addr)

let write_memory t m addr v =
  let contents = Hashtbl.find t.mem_state (mem_uid m) in
  if addr < 0 || addr >= mem_size m then invalid_arg "write_memory: range";
  if Bits.width v <> mem_width m then invalid_arg "write_memory: width";
  contents.(addr) <- v;
  t.settled <- false
