open Signal

type model = Unit | Typical

let model_name = function Unit -> "unit" | Typical -> "typical"

let delay_of model s =
  match model with
  | Unit -> (
      match kind s with
      | Const _ | Input _ | Reg _ | Mem_read_sync _ -> 0
      | _ -> 1)
  | Typical -> (
      match kind s with
      | Const _ | Input _ | Reg _ | Mem_read_sync _ -> 0
      | Wire _ | Select _ | Concat _ | Shift _ -> 0
      | Not _ | Mux _ -> 1
      | Op2 ((And | Or | Xor), _, _) -> 1
      | Op2 ((Add | Sub | Eq | Lt), _, _) -> 2
      | Op2 (Mul, _, _) -> 4
      | Mem_read_async _ -> 2)

type path_node = { pn_signal : Signal.t; pn_delay : int; pn_arrival : int }

type report = {
  r_circuit : string;
  r_model : model;
  r_nodes : int;
  r_comb_depth : int;
  r_max_delay : int;
  r_worst_path : path_node list;
  r_outputs : (string * int * int) list;
  r_hotspots : (Levelize.node * int) list;
}

let analyze ?(model = Typical) ?(hotspots = 5) lv =
  let nodes = Levelize.nodes lv in
  let n = Array.length nodes in
  let arrival = Array.make n 0 in
  Array.iter
    (fun nd ->
      let from_deps =
        Array.fold_left
          (fun acc dep -> max acc arrival.(dep))
          0 nd.Levelize.n_deps
      in
      arrival.(nd.Levelize.n_slot) <-
        delay_of model nd.Levelize.n_signal + from_deps)
    nodes;
  (* worst endpoint, ties broken by lowest slot for determinism *)
  let worst_slot = ref 0 in
  for i = 1 to n - 1 do
    if arrival.(i) > arrival.(!worst_slot) then worst_slot := i
  done;
  let rec walk_back slot acc =
    let nd = nodes.(slot) in
    let acc =
      {
        pn_signal = nd.Levelize.n_signal;
        pn_delay = delay_of model nd.Levelize.n_signal;
        pn_arrival = arrival.(slot);
      }
      :: acc
    in
    if Array.length nd.Levelize.n_deps = 0 then acc
    else begin
      (* follow the latest-arriving dependency; lowest slot on ties *)
      let best = ref nd.Levelize.n_deps.(0) in
      Array.iter
        (fun dep -> if arrival.(dep) > arrival.(!best) then best := dep)
        nd.Levelize.n_deps;
      walk_back !best acc
    end
  in
  let c = Levelize.circuit lv in
  {
    r_circuit = Circuit.name c;
    r_model = model;
    r_nodes = n;
    r_comb_depth = Levelize.comb_depth lv;
    r_max_delay = (if n = 0 then 0 else arrival.(!worst_slot));
    r_worst_path = (if n = 0 then [] else walk_back !worst_slot []);
    r_outputs =
      List.map
        (fun (name, s) ->
          let slot = Levelize.slot_of lv s in
          (name, nodes.(slot).Levelize.n_level, arrival.(slot)))
        (Circuit.outputs c);
    r_hotspots =
      List.map
        (fun nd -> (nd, nd.Levelize.n_fanout))
        (Levelize.hotspots lv ~n:hotspots);
  }

let of_circuit ?model ?hotspots c =
  analyze ?model ?hotspots (Levelize.of_circuit c)

let render r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "sta %s: model=%s nodes=%d comb_depth=%d max_delay=%d\n" r.r_circuit
    (model_name r.r_model) r.r_nodes r.r_comb_depth r.r_max_delay;
  add "  worst path (%d node(s)):\n" (List.length r.r_worst_path);
  List.iter
    (fun pn ->
      add "    %-10s +%d =%3d  %s\n"
        (Circuit.kind_name pn.pn_signal)
        pn.pn_delay pn.pn_arrival
        (Circuit.describe pn.pn_signal))
    r.r_worst_path;
  add "  outputs:\n";
  List.iter
    (fun (name, depth, delay) ->
      add "    %-24s depth=%3d delay=%3d\n" name depth delay)
    r.r_outputs;
  add "  fanout hotspots:\n";
  List.iter
    (fun (nd, fo) ->
      add "    %4d  %s\n" fo (Circuit.describe nd.Levelize.n_signal))
    r.r_hotspots;
  Buffer.contents buf

(* minimal JSON string escaping; signal descriptions are ASCII *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json r =
  let path =
    String.concat ","
      (List.map
         (fun pn ->
           Printf.sprintf "{\"signal\":%s,\"kind\":%s,\"delay\":%d,\"arrival\":%d}"
             (json_string (Circuit.describe pn.pn_signal))
             (json_string (Circuit.kind_name pn.pn_signal))
             pn.pn_delay pn.pn_arrival)
         r.r_worst_path)
  in
  let outputs =
    String.concat ","
      (List.map
         (fun (name, depth, delay) ->
           Printf.sprintf "{\"name\":%s,\"depth\":%d,\"delay\":%d}"
             (json_string name) depth delay)
         r.r_outputs)
  in
  let hotspots =
    String.concat ","
      (List.map
         (fun (nd, fo) ->
           Printf.sprintf "{\"signal\":%s,\"fanout\":%d}"
             (json_string (Circuit.describe nd.Levelize.n_signal))
             fo)
         r.r_hotspots)
  in
  Printf.sprintf
    "{\"circuit\":%s,\"model\":%s,\"nodes\":%d,\"comb_depth\":%d,\"max_delay\":%d,\"worst_path\":[%s],\"outputs\":[%s],\"hotspots\":[%s]}"
    (json_string r.r_circuit)
    (json_string (model_name r.r_model))
    r.r_nodes r.r_comb_depth r.r_max_delay path outputs hotspots
