(** Levelized view of a {!Circuit}: every node of the netlist flattened
    into one array in level order, with integer-slot dependency edges and
    fanout counts.

    Level 0 holds the sources — constants, inputs, registers and
    synchronous memory reads (whose current-cycle value depends on state,
    not on combinational fan-in). A node sits at level [n] when every
    combinational dependency sits at a level strictly below [n]
    (specifically [1 + max (level deps)]). Within a level, nodes are
    ordered by uid, so the layout is a deterministic function of the
    circuit alone.

    This array is the contract for the ROADMAP's compiled-simulator item:
    a backend can evaluate slot [0..n) in order (dependencies always
    resolve to lower slots), or evaluate each level's slice in parallel,
    over preallocated value arrays indexed by slot — no hashing, no
    pointer chasing. {!Dataflow} and {!Sta} already run over it. *)

type node = {
  n_slot : int;  (** index of this node in {!nodes} *)
  n_signal : Signal.t;
  n_level : int;
  n_deps : int array;
      (** slots of the combinational dependencies, in {!Circuit.comb_deps}
          order; every entry is [< n_slot]. The per-kind layout is part of
          the contract (compiled backends decode operands positionally
          from it): [Op2 (op, a, b)] is [[|a; b|]]; [Not], [Shift] and
          [Select] are [[|a|]]; [Mux (sel, cases)] is [sel] followed by
          the cases in order; [Concat parts] is the parts MSB-first;
          [Wire] is its driver; [Mem_read_async] is [[|addr|]]; sources
          ([Const], [Input], [Reg], [Mem_read_sync]) are empty. *)
  n_fanout : int;
      (** number of loads: combinational consumers, sequential-element
          inputs (register d/enable/clear, sync-read address/enable) and
          memory write-port references, counting one per reference *)
}

type t

val of_circuit : Circuit.t -> t

val circuit : t -> Circuit.t
val nodes : t -> node array
(** Level-major, uid-minor order. Do not mutate. *)

val n_nodes : t -> int
val n_levels : t -> int
(** Number of distinct levels ([comb_depth + 1]); at least 1 for any
    well-formed circuit. *)

val comb_depth : t -> int
(** Highest level = length of the longest combinational dependency
    chain. 0 for a circuit of sources only. *)

val level_slice : t -> int -> int * int
(** [(first_slot, count)] of a level's contiguous slice of {!nodes}. *)

val node_of : t -> Signal.t -> node
(** Raises [Not_found] for signals outside the circuit. *)

val deps_resolved : t -> node -> Signal.t array
(** The node's combinational dependencies as signals, aligned with
    [n_deps] (slot [n_deps.(i)] is [deps_resolved.(i)]) — the
    convenience view of the layout contract above for backends that
    need the signal (width, kind) alongside the slot. Allocates a fresh
    array per call; {!Dataflow} and {!Sta} do not use it. *)

val slot_of : t -> Signal.t -> int
val level_of : t -> Signal.t -> int
val fanout_of : t -> Signal.t -> int

val max_fanout : t -> int
(** Largest fanout of any node (0 for a single-node circuit). *)

val hotspots : t -> n:int -> node list
(** The [n] highest-fanout nodes, fanout descending, ties by uid
    ascending — the nets replication/pipelining should look at first. *)
