(** Forward abstract interpretation over a {!Levelize}d circuit.

    Two lattices run to fixpoint across cycle boundaries:

    - {b Constant propagation} ([Bot < Const _ < Top]): a node is
      [Const b] when it provably holds [b] on {e every} cycle, for all
      input valuations. Register and sync-read state is seeded from its
      reset value (register [init]; sync reads start at zero, matching
      {!Cyclesim}) and joined with every value the boundary may latch, so
      the result is a statement over all reachable cycles, not just
      cycle 0. The transfer functions subsume every fold {!Opt} performs
      (including the zero identities and constant-selector mux clamping),
      which {!crosscheck} verifies differentially.

    - {b 3-valued X-propagation}: a node is marked X when an
      uninitialized value may reach it under 4-state semantics. The only
      X sources in this DSL are memories (registers always carry an
      [init]): a read is X when the memory has no write port at all (the
      circuit can never initialize it — a ROM filled by a simulator
      backdoor, say), or when some write port's data, address or enable
      is itself X. A node whose constant value is [Const _] is never X —
      [x & 0] is 0 no matter what [x] is. The model is flow-insensitive
      about write-before-read ordering: a memory with a defined write
      port is assumed initialized by it.

    The analysis powers the value-aware {!Lint} rules
    ([read-before-init], [const-output], [dead-mux-arm],
    [redundant-reset]) and the [dataflow-opt-divergence] soundness
    cross-check against {!Opt.constant_fold}. *)

type aval = Bot | Const of Bits.t | Top

val join : aval -> aval -> aval
val pp_aval : Format.formatter -> aval -> unit
(** [bot], [42'h2a] (via {!Bits.pp}) or [top]. *)

type t

val run : Levelize.t -> t
(** Run both fixpoints. Cost is a small constant number of passes over
    the levelized array (each register can only climb the lattice twice). *)

val levelize : t -> Levelize.t

val value_of : t -> Signal.t -> aval
(** Raises [Not_found] for signals outside the circuit. *)

val is_x : t -> Signal.t -> bool

(** {1 Lint rules} *)

val lint : t -> Diag.t list
(** The four value-aware rules: [read-before-init] (warning — an X value
    reaches an output or a memory write enable), [const-output] (warning
    — an output not syntactically a constant is provably constant on
    every cycle), [dead-mux-arm] (warning — a mux selector is provably
    constant so the other arms are unreachable), [redundant-reset] (info
    — a register's data input provably always equals its reset value, so
    the clear term is redundant). *)

val crosscheck : t -> Diag.t list
(** Differential soundness check: every output {!Opt.constant_fold}
    reduces to a constant must be [Const] of the same bits here. Any
    divergence is an error-severity [dataflow-opt-divergence] diagnostic
    — it means one of the two passes mis-evaluated a node. *)
