(** Sequential unsigned restoring divider.

    One quotient bit per cycle: a [width]-bit division completes in
    [width] cycles — the shared normalization unit of A³'s stage 3 (one
    divide per output lane) and a generally useful DSL block. *)

type t = {
  (* inputs (wires to drive) *)
  start : Signal.t;  (** pulse with operands valid; ignored while busy *)
  dividend : Signal.t;
  divisor : Signal.t;
  (* outputs *)
  busy : Signal.t;
  done_ : Signal.t;  (** one-cycle pulse when the result is ready *)
  quotient : Signal.t;
  remainder : Signal.t;
}

val create : width:int -> unit -> t
(** Division by zero yields an all-ones quotient (the usual hardware
    convention) with remainder = dividend. *)
