open Signal

let sig_name s =
  match name_of s with
  | Some n -> Printf.sprintf "%s_%d" n (uid s)
  | None -> (
      match kind s with
      | Input n -> n
      | _ -> Printf.sprintf "s_%d" (uid s))

let range w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let const_literal b =
  Printf.sprintf "%d'h%s" (Bits.width b) (Bits.to_hex_string b)

let op2_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Eq -> "=="
  | Lt -> "<"

let of_circuit circuit =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs = Circuit.inputs circuit in
  let outputs = Circuit.outputs circuit in
  let ports =
    ("clk" :: List.map fst inputs) @ List.map fst outputs
    |> String.concat ", "
  in
  pr "module %s (%s);\n" (Circuit.name circuit) ports;
  pr "  input clk;\n";
  List.iter (fun (n, w) -> pr "  input %s%s;\n" (range w) n) inputs;
  List.iter
    (fun (n, s) -> pr "  output %s%s;\n" (range (width s)) n)
    outputs;
  (* declarations *)
  let topo = Circuit.signals_in_topo_order circuit in
  List.iter
    (fun s ->
      match kind s with
      | Input _ -> ()
      | Reg _ | Mem_read_sync _ ->
          pr "  reg %s%s;\n" (range (width s)) (sig_name s)
      | _ -> pr "  wire %s%s;\n" (range (width s)) (sig_name s))
    topo;
  List.iter
    (fun m ->
      pr "  reg %s%s [0:%d];\n"
        (range (mem_width m))
        (mem_name m)
        (mem_size m - 1))
    (Circuit.memories circuit);
  (* combinational assigns *)
  let n = sig_name in
  List.iter
    (fun s ->
      match kind s with
      | Const b -> pr "  assign %s = %s;\n" (n s) (const_literal b)
      | Input _ | Reg _ | Mem_read_sync _ -> ()
      | Wire r ->
          let d = Option.get !r in
          pr "  assign %s = %s;\n" (n s) (n d)
      | Op2 (op, a, b) ->
          pr "  assign %s = %s %s %s;\n" (n s) (n a) (op2_str op) (n b)
      | Not a -> pr "  assign %s = ~%s;\n" (n s) (n a)
      | Shift (Sll, amt, a) -> pr "  assign %s = %s << %d;\n" (n s) (n a) amt
      | Shift (Srl, amt, a) -> pr "  assign %s = %s >> %d;\n" (n s) (n a) amt
      | Shift (Sra, amt, a) ->
          pr "  assign %s = $signed(%s) >>> %d;\n" (n s) (n a) amt
      | Select (hi, lo, a) ->
          if width a = 1 then pr "  assign %s = %s;\n" (n s) (n a)
          else pr "  assign %s = %s[%d:%d];\n" (n s) (n a) hi lo
      | Concat parts ->
          pr "  assign %s = {%s};\n" (n s)
            (String.concat ", " (List.map n parts))
      | Mux (sel, cases) ->
          let n_cases = List.length cases in
          if n_cases = 2 then
            pr "  assign %s = %s ? %s : %s;\n" (n s) (n sel)
              (n (List.nth cases 1))
              (n (List.nth cases 0))
          else begin
            (* chained conditional with clamped index *)
            let parts =
              List.mapi
                (fun i c ->
                  if i = n_cases - 1 then n c
                  else Printf.sprintf "(%s == %d) ? %s : " (n sel) i (n c))
                cases
            in
            pr "  assign %s = %s;\n" (n s) (String.concat "" parts)
          end
      | Mem_read_async (m, addr) ->
          pr "  assign %s = %s[%s];\n" (n s) (mem_name m) (n addr))
    topo;
  (* sequential block *)
  pr "  always @(posedge clk) begin\n";
  List.iter
    (fun s ->
      match kind s with
      | Reg { d; enable; clear; init } ->
          let body = Printf.sprintf "%s <= %s;" (n s) (n d) in
          let body =
            match enable with
            | None -> body
            | Some e -> Printf.sprintf "if (%s) %s" (n e) body
          in
          let body =
            match clear with
            | None -> body
            | Some c ->
                Printf.sprintf "if (%s) %s <= %s; else begin %s end" (n c)
                  (n s) (const_literal init) body
          in
          pr "    %s\n" body
      | Mem_read_sync (m, addr, enable) ->
          pr "    if (%s) %s <= %s[%s];\n" (n enable) (n s) (mem_name m)
            (n addr)
      | _ -> ())
    topo;
  List.iter
    (fun m ->
      List.iter
        (fun wp ->
          pr "    if (%s) %s[%s] <= %s;\n" (n wp.wp_enable) (mem_name m)
            (n wp.wp_addr) (n wp.wp_data))
        (mem_write_ports m))
    (Circuit.memories circuit);
  pr "  end\n";
  List.iter (fun (name, s) -> pr "  assign %s = %s;\n" name (n s)) outputs;
  pr "endmodule\n";
  Buffer.contents buf
