(** Netlist optimization.

    The composer sits between the user's RTL and the tool flow, so it can
    clean the netlist the way FIRRTL does for Chisel: constant folding,
    identity simplification (x+0, x&0, mux on a constant selector, …) and
    — implicitly, because {!Circuit.create} only keeps reachable nodes —
    dead-code elimination. The transformed circuit is observationally
    identical: same ports, same cycle-by-cycle behaviour. *)

val eval_op2 : Signal.op2 -> Bits.t -> Bits.t -> Bits.t
(** Evaluate a binary operator on constant operands — the single source of
    truth shared by the folder, {!Dataflow}'s transfer functions and
    {!Cyclesim}-agreement tests. *)

val constant_fold : Circuit.t -> Circuit.t
(** Rebuild the circuit with constants propagated. *)

val node_count : Circuit.t -> int
(** Convenience: the ["nodes"] entry of {!Circuit.stats}. *)
