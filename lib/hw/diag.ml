type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  loc : string option;
  message : string;
  hint : string option;
}

let make ?loc ?hint ~rule ~severity message =
  { rule; severity; loc; message; hint }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare_severity a.severity b.severity with
      | 0 -> compare a.rule b.rule
      | c -> c)
    ds

let to_string d =
  let loc = match d.loc with Some l -> " " ^ l ^ ":" | None -> "" in
  let hint = match d.hint with Some h -> "\n    hint: " ^ h | None -> "" in
  Printf.sprintf "%s[%s]%s %s%s" (severity_name d.severity) d.rule loc
    d.message hint

let count ds sev = List.length (List.filter (fun d -> d.severity = sev) ds)

let render = function
  | [] -> ""
  | ds ->
      let lines = List.map to_string (sort ds) in
      let summary =
        Printf.sprintf "%d error(s), %d warning(s), %d info(s)"
          (count ds Error) (count ds Warning) (count ds Info)
      in
      String.concat "\n" (lines @ [ summary ])

(* hand-rolled JSON: the toolchain has no JSON library baked in *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let field k v = Printf.sprintf "\"%s\":\"%s\"" k (json_escape v) in
  let opt k = function Some v -> [ field k v ] | None -> [] in
  "{"
  ^ String.concat ","
      ([ field "rule" d.rule; field "severity" (severity_name d.severity) ]
      @ opt "loc" d.loc
      @ [ field "message" d.message ]
      @ opt "hint" d.hint)
  ^ "}"

let render_json ds =
  Printf.sprintf "{\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d}"
    (String.concat "," (List.map to_json (sort ds)))
    (count ds Error) (count ds Warning) (count ds Info)

let waive ~rules ds = List.filter (fun d -> not (List.mem d.rule rules)) ds

let promote_warnings =
  List.map (fun d ->
      if d.severity = Warning then { d with severity = Error } else d)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = errors ds <> []

let raise_if_errors ?(what = "check") ds =
  match errors ds with
  | [] -> ()
  | errs -> failwith (Printf.sprintf "%s failed:\n%s" what (render errs))
