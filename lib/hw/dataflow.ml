open Signal

type aval = Bot | Const of Bits.t | Top

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Const x, Const y -> if Bits.equal x y then Const x else Top

let aval_equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Const x, Const y -> Bits.equal x y
  | _ -> false

let pp_aval fmt = function
  | Bot -> Format.pp_print_string fmt "bot"
  | Top -> Format.pp_print_string fmt "top"
  | Const b -> Bits.pp fmt b

type t = {
  lv : Levelize.t;
  values : aval array; (* by slot *)
  xs : bool array; (* by slot *)
  mem_x : (int, bool) Hashtbl.t; (* mem uid -> contents may be X *)
}

let is_high b = not (Bits.is_zero b)

(* may/must views of a 1-bit control given its abstract value; [None]
   control means the given default *)
let may_be_high av = match av with Some (Const b) -> is_high b | _ -> true
let must_be_high av = match av with Some (Const b) -> is_high b | _ -> false

(* ---- constant lattice ---- *)

(* Transfer function for one combinational node. Must be at least as
   strong as every fold in [Opt.constant_fold] — [crosscheck] enforces
   this differentially. *)
let transfer ~state s value_of =
  match kind s with
  | Const b -> Const b
  | Input _ -> Top
  | Reg _ | Mem_read_sync _ -> state s
  | Mem_read_async _ -> Top (* contents not tracked *)
  | Wire r -> (
      match !r with Some d -> value_of d | None -> Top)
  | Not a -> (
      match value_of a with
      | Const b -> Const (Bits.lognot b)
      | _ -> Top)
  | Shift (dir, n, a) -> (
      match value_of a with
      | Const b ->
          Const
            (match dir with
            | Sll -> Bits.shift_left b n
            | Srl -> Bits.shift_right b n
            | Sra -> Bits.shift_right_arith b n)
      | _ -> Top)
  | Select (hi, lo, a) -> (
      match value_of a with
      | Const b -> Const (Bits.slice b ~hi ~lo)
      | _ -> Top)
  | Concat parts ->
      let avs = List.map value_of parts in
      if List.for_all (function Const _ -> true | _ -> false) avs then
        Const
          (Bits.concat_list
             (List.map (function Const b -> b | _ -> assert false) avs))
      else Top
  | Mux (sel, cases) -> (
      match value_of sel with
      | Const csel ->
          (* same clamp as Opt / Cyclesim: out of range picks last *)
          value_of
            (List.nth cases
               (min (Bits.to_int_trunc csel) (List.length cases - 1)))
      | _ ->
          (* stronger than Opt: all arms equal is still a constant *)
          List.fold_left (fun acc c -> join acc (value_of c)) Bot cases)
  | Op2 (op, a, b) -> (
      let va = value_of a and vb = value_of b in
      let zero () = Const (Bits.zero (width s)) in
      match (va, vb) with
      | Const ca, Const cb -> Const (Opt.eval_op2 op ca cb)
      | Const ca, _ when op = Add && Bits.is_zero ca -> vb
      | _, Const cb when (op = Add || op = Sub) && Bits.is_zero cb -> va
      | Const ca, _ when (op = And || op = Mul) && Bits.is_zero ca -> zero ()
      | _, Const cb when (op = And || op = Mul) && Bits.is_zero cb -> zero ()
      | Const ca, _ when op = Or && Bits.is_zero ca -> vb
      | _, Const cb when op = Or && Bits.is_zero cb -> va
      | _ -> Top)

let const_fixpoint lv =
  let nodes = Levelize.nodes lv in
  let n = Array.length nodes in
  let values = Array.make n Bot in
  (* state, by slot, for Reg and Mem_read_sync nodes *)
  let state = Array.make n Bot in
  Array.iter
    (fun nd ->
      match kind nd.Levelize.n_signal with
      | Reg { init; _ } -> state.(nd.Levelize.n_slot) <- Const init
      | Mem_read_sync _ ->
          state.(nd.Levelize.n_slot) <-
            Const (Bits.zero (width nd.Levelize.n_signal))
      | _ -> ())
    nodes;
  let value_of s = values.(Levelize.slot_of lv s) in
  let comb_pass () =
    Array.iter
      (fun nd ->
        values.(nd.Levelize.n_slot) <-
          transfer
            ~state:(fun s -> state.(Levelize.slot_of lv s))
            nd.Levelize.n_signal value_of)
      nodes
  in
  let av_opt = Option.map value_of in
  (* one cycle-boundary update; returns true when any state rose *)
  let boundary () =
    let changed = ref false in
    Array.iter
      (fun nd ->
        let slot = nd.Levelize.n_slot in
        let update v =
          let v' = join state.(slot) v in
          if not (aval_equal v' state.(slot)) then begin
            state.(slot) <- v';
            changed := true
          end
        in
        match kind nd.Levelize.n_signal with
        | Reg { d; enable; clear; init } ->
            let must_clear = must_be_high (av_opt clear) && clear <> None in
            let may_clear = clear <> None && may_be_high (av_opt clear) in
            let may_latch =
              (not must_clear)
              && (match enable with None -> true | Some e -> (
                    match value_of e with Const b -> is_high b | _ -> true))
            in
            if may_clear then update (Const init);
            if may_latch then update (value_of d)
        | Mem_read_sync (_, _, enable) ->
            if may_be_high (Some (value_of enable)) then update Top
        | _ -> ())
      nodes;
    !changed
  in
  comb_pass ();
  while boundary () do
    comb_pass ()
  done;
  (values, state)

(* ---- X lattice (uses the settled constant values as a mask) ---- *)

let x_fixpoint lv values =
  let nodes = Levelize.nodes lv in
  let n = Array.length nodes in
  let xs = Array.make n false in
  let xstate = Array.make n false in
  let mem_x = Hashtbl.create 8 in
  List.iter
    (fun m ->
      (* a memory the circuit never writes can never be initialized *)
      Hashtbl.replace mem_x (mem_uid m) (mem_write_ports m = []))
    (Circuit.memories (Levelize.circuit lv));
  let x_of s = xs.(Levelize.slot_of lv s) in
  let av_of s = values.(Levelize.slot_of lv s) in
  let comb_pass () =
    Array.iter
      (fun nd ->
        let s = nd.Levelize.n_signal in
        let x =
          match kind s with
          | Const _ | Input _ -> false
          | Reg _ | Mem_read_sync _ -> xstate.(nd.Levelize.n_slot)
          | Mem_read_async (m, addr) ->
              Hashtbl.find mem_x (mem_uid m) || x_of addr
          | Mux (sel, cases) -> (
              match av_of sel with
              | Const csel ->
                  x_of
                    (List.nth cases
                       (min (Bits.to_int_trunc csel) (List.length cases - 1)))
              | _ -> x_of sel || List.exists x_of cases)
          | _ -> List.exists x_of (Circuit.comb_deps s)
        in
        (* mask: a provably constant value is defined whatever its
           operands were *)
        let x = x && not (match av_of s with Const _ -> true | _ -> false) in
        xs.(nd.Levelize.n_slot) <- x)
      nodes
  in
  let boundary () =
    let changed = ref false in
    let raise_mem m =
      if not (Hashtbl.find mem_x (mem_uid m)) then begin
        Hashtbl.replace mem_x (mem_uid m) true;
        changed := true
      end
    in
    List.iter
      (fun m ->
        if
          List.exists
            (fun wp ->
              x_of wp.wp_data || x_of wp.wp_addr || x_of wp.wp_enable)
            (mem_write_ports m)
        then raise_mem m)
      (Circuit.memories (Levelize.circuit lv));
    Array.iter
      (fun nd ->
        let slot = nd.Levelize.n_slot in
        let raise_state x =
          if x && not xstate.(slot) then begin
            xstate.(slot) <- true;
            changed := true
          end
        in
        match kind nd.Levelize.n_signal with
        | Reg { d; enable; clear; _ } ->
            (* clear-to-init yields a defined value; an X enable/clear
               only picks between branches the join already covers *)
            let must_clear =
              match Option.map av_of clear with
              | Some (Const b) -> is_high b
              | Some _ -> false
              | None -> false
            in
            let may_latch =
              (not must_clear)
              &&
              match Option.map av_of enable with
              | Some (Const b) -> is_high b
              | _ -> true
            in
            if may_latch then raise_state (x_of d)
        | Mem_read_sync (m, addr, enable) ->
            let may_read =
              match av_of enable with Const b -> is_high b | _ -> true
            in
            if may_read then
              raise_state (Hashtbl.find mem_x (mem_uid m) || x_of addr)
        | _ -> ())
      nodes;
    !changed
  in
  comb_pass ();
  while boundary () do
    comb_pass ()
  done;
  (xs, mem_x)

let run lv =
  let values, _state = const_fixpoint lv in
  let xs, mem_x = x_fixpoint lv values in
  { lv; values; xs; mem_x }

let levelize t = t.lv
let value_of t s = t.values.(Levelize.slot_of t.lv s)
let is_x t s = t.xs.(Levelize.slot_of t.lv s)

(* ---- lint rules ---- *)

let warn ?loc ?hint rule msg =
  Diag.make ?loc ?hint ~rule ~severity:Diag.Warning msg

let info ?loc ?hint rule msg = Diag.make ?loc ?hint ~rule ~severity:Diag.Info msg

let read_before_init t =
  let c = Levelize.circuit t.lv in
  let outs =
    List.filter_map
      (fun (n, s) ->
        if is_x t s then
          Some
            (warn
               ~loc:(Printf.sprintf "output %s" n)
               ~hint:
                 "initialize the memory through a write port (or gate the \
                  read until after initialization)"
               "read-before-init"
               "an uninitialized memory read may reach this output (X under \
                4-state semantics)")
        else None)
      (Circuit.outputs c)
  in
  let wens =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun wp ->
            if is_x t wp.wp_enable then
              Some
                (warn
                   ~loc:(Printf.sprintf "memory %s" (mem_name m))
                   ~hint:
                     "an X write enable can corrupt arbitrary addresses in \
                      synthesis vs simulation"
                   "read-before-init"
                   "a write-port enable derives from an uninitialized memory \
                    read")
            else None)
          (mem_write_ports m))
      (Circuit.memories c)
  in
  outs @ wens

let const_output t =
  List.filter_map
    (fun (n, s) ->
      match (kind s, value_of t s) with
      | Const _, _ -> None (* a literal constant output is deliberate *)
      | _, Const b ->
          Some
            (warn
               ~loc:(Printf.sprintf "output %s" n)
               ~hint:"replace the logic cone with a constant, or check the \
                      feeding logic"
               "const-output"
               (Format.asprintf
                  "provably %a on every cycle for every input" Bits.pp b))
      | _ -> None)
    (Circuit.outputs (Levelize.circuit t.lv))

let dead_mux_arm t =
  List.filter_map
    (fun s ->
      match kind s with
      | Mux (sel, cases) when (match kind sel with Const _ -> false | _ -> true)
        -> (
          match value_of t sel with
          | Const csel ->
              let n = List.length cases in
              let live = min (Bits.to_int_trunc csel) (n - 1) in
              Some
                (warn ~loc:(Circuit.describe s)
                   ~hint:"drop the mux and use the live arm directly"
                   "dead-mux-arm"
                   (Printf.sprintf
                      "selector is provably %d on every cycle; the other %d \
                       arm(s) are unreachable"
                      live (n - 1)))
          | _ -> None)
      | _ -> None)
    (Circuit.signals_in_topo_order (Levelize.circuit t.lv))

let redundant_reset t =
  List.filter_map
    (fun r ->
      match kind r with
      | Reg { d; clear = Some _; init; _ } -> (
          match value_of t d with
          | Const b when Bits.equal b init ->
              Some
                (info ~loc:(Circuit.describe r)
                   ~hint:"drop the clear term: clearing and latching load \
                          the same value"
                   "redundant-reset"
                   (Format.asprintf
                      "data input is provably %a, equal to the reset value"
                      Bits.pp b))
          | _ -> None)
      | _ -> None)
    (Circuit.registers (Levelize.circuit t.lv))

let lint t =
  read_before_init t @ const_output t @ dead_mux_arm t @ redundant_reset t

let crosscheck t =
  let c = Levelize.circuit t.lv in
  let folded = Opt.constant_fold c in
  List.filter_map
    (fun ((n, s), (n', s')) ->
      assert (n = n');
      match kind s' with
      | Const b -> (
          match value_of t s with
          | Const b' when Bits.equal b b' -> None
          | av ->
              Some
                (Diag.make
                   ~loc:(Printf.sprintf "output %s" n)
                   ~hint:
                     "a transfer function in Hw.Dataflow or a fold in Hw.Opt \
                      mis-evaluates a node; this is a bug in the analyses, \
                      not in the design"
                   ~rule:"dataflow-opt-divergence" ~severity:Diag.Error
                   (Format.asprintf
                      "Hw.Opt folds this output to %a but dataflow computes \
                       %a"
                      Bits.pp b pp_aval av)))
      | _ -> None)
    (List.combine (Circuit.outputs c) (Circuit.outputs folded))
