type 'a t = {
  name : string;
  engine : Engine.t;
  capacity : int;
  items : 'a Queue.t;
  waiting_senders : ('a * (unit -> unit)) Queue.t;
  waiting_receivers : ('a -> unit) Queue.t;
}

let create ?(name = "chan") engine ~capacity =
  if capacity < 1 then invalid_arg "Channel.create: capacity must be >= 1";
  {
    name;
    engine;
    capacity;
    items = Queue.create ();
    waiting_senders = Queue.create ();
    waiting_receivers = Queue.create ();
  }

let name t = t.name
let occupancy t = Queue.length t.items

(* Deliver buffered items to waiting receivers, and admit waiting senders
   into freed space. Continuations run as zero-delay events so that a
   callback chain can't starve the scheduler or recurse unboundedly. *)
let rec settle t =
  if (not (Queue.is_empty t.items)) && not (Queue.is_empty t.waiting_receivers)
  then begin
    let item = Queue.pop t.items in
    let k = Queue.pop t.waiting_receivers in
    Engine.schedule t.engine ~delay:0 (fun () -> k item);
    settle t
  end
  else if
    Queue.length t.items < t.capacity && not (Queue.is_empty t.waiting_senders)
  then begin
    let item, k = Queue.pop t.waiting_senders in
    Queue.push item t.items;
    Engine.schedule t.engine ~delay:0 k;
    settle t
  end

let send t item ~on_accept =
  if Queue.length t.items < t.capacity then begin
    Queue.push item t.items;
    Engine.schedule t.engine ~delay:0 on_accept
  end
  else Queue.push (item, on_accept) t.waiting_senders;
  settle t

let try_send t item =
  if Queue.length t.items < t.capacity && Queue.is_empty t.waiting_senders
  then begin
    Queue.push item t.items;
    settle t;
    true
  end
  else false

let recv t k =
  Queue.push k t.waiting_receivers;
  settle t

let try_recv t =
  if Queue.is_empty t.items || not (Queue.is_empty t.waiting_receivers) then
    None
  else begin
    let item = Queue.pop t.items in
    settle t;
    Some item
  end

let peek t = Queue.peek_opt t.items
