(** Simulation statistics: counters, running means, histograms, and busy-time
    tracking used to derive bandwidth and utilization numbers. *)

type counter

val counter : unit -> counter
val incr : ?by:int -> counter -> unit
val count : counter -> int

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  total : float;
}

type series

val series : unit -> series
val observe : series -> float -> unit
val summarize : series -> summary
(** Raises [Failure] on an empty series. *)

type histogram

val histogram : bucket_width:float -> histogram
val record : histogram -> float -> unit
val buckets : histogram -> (float * int) list
(** Sorted [(bucket_lower_bound, count)] pairs. *)

type busy_tracker

val busy_tracker : unit -> busy_tracker
val mark_busy : busy_tracker -> from_:int -> until:int -> unit
(** Accumulate a busy interval [from_, until). Overlapping intervals are the
    caller's responsibility to avoid (each resource tracks itself). *)

val busy_time : busy_tracker -> int
val utilization : busy_tracker -> total:int -> float
