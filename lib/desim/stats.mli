(** Simulation statistics: counters, running means, histograms, and busy-time
    tracking used to derive bandwidth and utilization numbers. *)

type counter

val counter : unit -> counter
val incr : ?by:int -> counter -> unit
val count : counter -> int

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  total : float;
}

type series

val series : unit -> series
val observe : series -> float -> unit

val summarize_opt : series -> summary option
(** [None] on an empty series — the safe form for call sites that can
    legitimately observe zero samples (short fault campaigns, idle ports). *)

val summarize : series -> summary
(** Raises [Failure] on an empty series; prefer {!summarize_opt}. *)

val quantile_opt : series -> q:float -> float option
(** Linear-interpolated quantile of all observed samples ([q] clamped to
    [0, 1]); [None] on an empty series. Sorts a copy: O(n log n) per call,
    intended for end-of-run reporting. *)

type histogram

val histogram : bucket_width:float -> histogram
val record : histogram -> float -> unit

val buckets : histogram -> (float * int) list
(** Sorted [(bucket_lower_bound, count)] pairs covering the full observed
    range — interior buckets with zero hits are included so exported
    histograms are plot-ready. *)

type busy_tracker

val busy_tracker : unit -> busy_tracker

val mark_busy : busy_tracker -> from_:int -> until:int -> unit
(** Accumulate a busy interval [from_, until). Overlapping or duplicate
    intervals merge rather than double-count. *)

val busy_time : busy_tracker -> int
(** Total covered time: the measure of the union of all marked intervals. *)

val utilization : busy_tracker -> total:int -> float
(** [busy_time / total], clamped to [0, 1]. *)
