(** Bounded ready/valid channels between simulation components.

    A channel models an elastic FIFO with [capacity] entries. Producers call
    {!send}; if the FIFO is full the item is queued on the producer side and
    delivered when space frees up (the continuation fires then, modelling
    backpressure). Consumers call {!recv}, which fires its continuation as
    soon as an item is available — immediately if one is already buffered. *)

type 'a t

val create : ?name:string -> Engine.t -> capacity:int -> 'a t
val name : 'a t -> string
val occupancy : 'a t -> int

val send : 'a t -> 'a -> on_accept:(unit -> unit) -> unit
(** Offer an item. [on_accept] fires (possibly immediately) once the item has
    entered the FIFO. *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking send: [false] if the FIFO is full. *)

val recv : 'a t -> ('a -> unit) -> unit
(** Take the next item; the callback fires when one is available. Multiple
    outstanding [recv]s are served in order. *)

val try_recv : 'a t -> 'a option

val peek : 'a t -> 'a option
