type event = { time : int; seq : int; action : unit -> unit }

(* Binary min-heap ordered by (time, seq). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : int;
  mutable next_seq : int;
}

let dummy = { time = 0; seq = 0; action = ignore }
let create () = { heap = Array.make 64 dummy; size = 0; clock = 0; next_seq = 0 }
let now t = t.clock
let pending t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let push t ev =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while !i > 0 && before t.heap.(!i) t.heap.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf
         "Engine.schedule_at: time %d is in the past (clock is at %d)" time
         t.clock);
  let ev = { time; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) action

let next_time t = if t.size = 0 then None else Some t.heap.(0).time

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    t.clock <- max t.clock ev.time;
    ev.action ();
    true
  end

exception Livelock of { fired : int; pending : int; clock : int }

let () =
  Printexc.register_printer (function
    | Livelock { fired; pending; clock } ->
        Some
          (Printf.sprintf
             "Desim.Engine.Livelock: fired %d events without draining (%d \
              still pending at t=%d ps)"
             fired pending clock)
    | _ -> None)

let run ?until ?max_events t =
  let fired = ref 0 in
  let guard () =
    match max_events with
    | Some limit when !fired >= limit ->
        raise (Livelock { fired = !fired; pending = t.size; clock = t.clock })
    | _ -> ()
  in
  match until with
  | None ->
      while
        guard ();
        step t
      do
        incr fired
      done
  | Some limit ->
      let continue = ref true in
      while !continue do
        if t.size = 0 || t.heap.(0).time > limit then begin
          t.clock <- max t.clock limit;
          continue := false
        end
        else begin
          guard ();
          ignore (step t);
          incr fired
        end
      done

let drain_or_fail ?(max_events = 10_000_000) t =
  try run ~max_events t
  with Livelock { fired; pending; clock } ->
    failwith
      (Printf.sprintf
         "Engine.drain_or_fail: still %d pending event(s) after %d fired \
          (t=%d ps) — likely a deadlocked or livelocked test"
         pending fired clock)
