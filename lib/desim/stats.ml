type counter = { mutable c : int }

let counter () = { c = 0 }
let incr ?(by = 1) t = t.c <- t.c + by
let count t = t.c

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  total : float;
}

type series = {
  mutable n : int;
  mutable total : float;
  mutable mn : float;
  mutable mx : float;
  mutable samples : float array; (* first [n] slots are live *)
}

let series () =
  { n = 0; total = 0.; mn = infinity; mx = neg_infinity; samples = [||] }

let observe s x =
  if s.n = Array.length s.samples then begin
    let grown = Array.make (max 16 (2 * s.n)) 0. in
    Array.blit s.samples 0 grown 0 s.n;
    s.samples <- grown
  end;
  s.samples.(s.n) <- x;
  s.n <- s.n + 1;
  s.total <- s.total +. x;
  if x < s.mn then s.mn <- x;
  if x > s.mx then s.mx <- x

let summarize_opt s =
  if s.n = 0 then None
  else
    Some
      {
        n = s.n;
        mean = s.total /. float_of_int s.n;
        min = s.mn;
        max = s.mx;
        total = s.total;
      }

let summarize s =
  match summarize_opt s with
  | Some sum -> sum
  | None -> failwith "Stats.summarize: empty series"

let quantile_opt s ~q =
  if s.n = 0 then None
  else begin
    let a = Array.sub s.samples 0 s.n in
    Array.sort Float.compare a;
    let q = Float.max 0. (Float.min 1. q) in
    (* linear interpolation between closest ranks *)
    let pos = q *. float_of_int (s.n - 1) in
    let i = int_of_float pos in
    let frac = pos -. float_of_int i in
    Some
      (if i + 1 < s.n then a.(i) +. (frac *. (a.(i + 1) -. a.(i)))
       else a.(i))
  end

type histogram = { bucket_width : float; table : (int, int) Hashtbl.t }

let histogram ~bucket_width =
  if bucket_width <= 0. then invalid_arg "Stats.histogram: bad bucket width";
  { bucket_width; table = Hashtbl.create 16 }

let record h x =
  let b = int_of_float (Float.floor (x /. h.bucket_width)) in
  let cur = Option.value ~default:0 (Hashtbl.find_opt h.table b) in
  Hashtbl.replace h.table b (cur + 1)

(* Every bucket between the observed min and max is emitted, including
   empty ones, so exported histograms are plot-ready (no gap teeth). *)
let buckets h =
  if Hashtbl.length h.table = 0 then []
  else begin
    let bmin = Hashtbl.fold (fun b _ acc -> min b acc) h.table max_int in
    let bmax = Hashtbl.fold (fun b _ acc -> max b acc) h.table min_int in
    List.init
      (bmax - bmin + 1)
      (fun i ->
        let b = bmin + i in
        ( float_of_int b *. h.bucket_width,
          Option.value ~default:0 (Hashtbl.find_opt h.table b) ))
  end

(* Disjoint half-open intervals, sorted by start. Overlapping (or
   adjacent) [mark_busy] calls merge instead of double-counting, so
   [busy_time] never exceeds the span of wall time actually covered. *)
type busy_tracker = { mutable intervals : (int * int) list }

let busy_tracker () = { intervals = [] }

let mark_busy t ~from_ ~until =
  if until < from_ then invalid_arg "Stats.mark_busy: negative interval";
  if until > from_ then begin
    let lo = ref from_ and hi = ref until in
    let disjoint =
      List.filter
        (fun (a, b) ->
          if b < !lo || a > !hi then true
          else begin
            lo := min !lo a;
            hi := max !hi b;
            false
          end)
        t.intervals
    in
    t.intervals <- List.sort compare ((!lo, !hi) :: disjoint)
  end

let busy_time t =
  List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 t.intervals

let utilization t ~total =
  if total <= 0 then 0.
  else Float.min 1.0 (float_of_int (busy_time t) /. float_of_int total)
