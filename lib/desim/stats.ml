type counter = { mutable c : int }

let counter () = { c = 0 }
let incr ?(by = 1) t = t.c <- t.c + by
let count t = t.c

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  total : float;
}

type series = {
  mutable n : int;
  mutable total : float;
  mutable mn : float;
  mutable mx : float;
}

let series () = { n = 0; total = 0.; mn = infinity; mx = neg_infinity }

let observe s x =
  s.n <- s.n + 1;
  s.total <- s.total +. x;
  if x < s.mn then s.mn <- x;
  if x > s.mx then s.mx <- x

let summarize s =
  if s.n = 0 then failwith "Stats.summarize: empty series";
  { n = s.n; mean = s.total /. float_of_int s.n; min = s.mn; max = s.mx;
    total = s.total }

type histogram = { bucket_width : float; table : (int, int) Hashtbl.t }

let histogram ~bucket_width =
  if bucket_width <= 0. then invalid_arg "Stats.histogram: bad bucket width";
  { bucket_width; table = Hashtbl.create 16 }

let record h x =
  let b = int_of_float (Float.floor (x /. h.bucket_width)) in
  let cur = Option.value ~default:0 (Hashtbl.find_opt h.table b) in
  Hashtbl.replace h.table b (cur + 1)

let buckets h =
  Hashtbl.fold (fun b c acc -> (float_of_int b *. h.bucket_width, c) :: acc)
    h.table []
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

type busy_tracker = { mutable busy : int }

let busy_tracker () = { busy = 0 }

let mark_busy t ~from_ ~until =
  if until < from_ then invalid_arg "Stats.mark_busy: negative interval";
  t.busy <- t.busy + (until - from_)

let busy_time t = t.busy

let utilization t ~total =
  if total <= 0 then 0. else float_of_int t.busy /. float_of_int total
