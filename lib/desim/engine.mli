(** Discrete-event simulation engine.

    Time is a dimensionless integer tick; the SoC models interpret it as a
    clock cycle of the accelerator fabric clock. Events scheduled for the
    same tick fire in scheduling order (deterministic). *)

type t

val create : unit -> t
val now : t -> int

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Schedule a callback [delay >= 0] ticks from now. *)

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute time [>= now]. *)

exception Livelock of { fired : int; pending : int; clock : int }
(** Raised by {!run} when [max_events] fire without draining the queue. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the event queue. With [until], stop once the next event would fire
    after [until] (the clock is left at [until]). With [max_events], raise
    {!Livelock} once that many events have fired without the queue draining
    — the guard that keeps a fault campaign from wedging the simulator. *)

val drain_or_fail : ?max_events:int -> t -> unit
(** [run] with a default 10M-event budget that converts {!Livelock} into
    [Failure] carrying the pending-event count — use in tests so a
    deadlocked simulation reports instead of hanging [dune runtest]. *)

val step : t -> bool
(** Fire the single next event. Returns [false] when the queue is empty. *)

val next_time : t -> int option
(** Timestamp of the next queued event, [None] when the queue is empty —
    the lookahead a conservative multi-engine coordinator (one engine per
    simulated device) needs to pick which engine fires next. *)

val pending : t -> int
(** Number of queued events. *)
