(** Discrete-event simulation engine.

    Time is a dimensionless integer tick; the SoC models interpret it as a
    clock cycle of the accelerator fabric clock. Events scheduled for the
    same tick fire in scheduling order (deterministic). *)

type t

val create : unit -> t
val now : t -> int

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Schedule a callback [delay >= 0] ticks from now. *)

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute time [>= now]. *)

val run : ?until:int -> t -> unit
(** Drain the event queue. With [until], stop once the next event would fire
    after [until] (the clock is left at [until]). *)

val step : t -> bool
(** Fire the single next event. Returns [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)
