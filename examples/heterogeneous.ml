(* A heterogeneous accelerator: two different Systems — a vector-add and a
   memcpy engine — composed onto one device, sharing the command fabric
   and the memory system, driven concurrently from one host handle. This
   is the "multiple Systems if they desire multiple functions" story of
   §II-A, with the runtime multiplexing both (the thread-level analogy of
   §IV-C).

     dune exec examples/heterogeneous.exe *)

module B = Beethoven
module H = Runtime.Handle

let () =
  let platform = Platform.Device.aws_f1 in
  let vec_sys = List.hd (Kernels.Vecadd.config ~n_cores:2 ()).B.Config.systems in
  let cp_sys =
    List.hd (Kernels.Memcpy.config Kernels.Memcpy.Beethoven).B.Config.systems
  in
  let config =
    B.Config.make ~name:"hetero" [ vec_sys; { cp_sys with B.Config.n_cores = 2 } ]
  in
  let design = B.Elaborate.elaborate config platform in
  print_string (B.Elaborate.summary design);
  let soc =
    B.Soc.create design ~behaviors:(function
      | "VecAdd" -> Kernels.Vecadd.behavior
      | "Memcpy" -> Kernels.Memcpy.behavior
      | s -> failwith s)
  in
  let handle = H.create soc in
  (* buffers *)
  let n = 8192 in
  let vec = H.malloc handle (n * 4) in
  let out = H.malloc handle (n * 4) in
  let blob = H.malloc handle (256 * 1024) in
  let blob_dst = H.malloc handle (256 * 1024) in
  for i = 0 to n - 1 do
    Bytes.set_int32_le (H.host_bytes handle vec) (i * 4) (Int32.of_int i)
  done;
  Bytes.fill (H.host_bytes handle blob) 0 (256 * 1024) 'x';
  let pending = ref 0 in
  List.iter
    (fun p ->
      incr pending;
      H.copy_to_fpga handle p ~on_done:(fun () -> decr pending))
    [ vec; blob ];
  Desim.Engine.run (H.engine handle);
  assert (!pending = 0);

  (* fire all four cores of both systems at once *)
  let t0 = Desim.Engine.now (H.engine handle) in
  let half = n / 2 in
  let vec_jobs =
    List.map
      (fun core ->
        H.send handle ~system:"VecAdd" ~core ~cmd:Kernels.Vecadd.command
          ~args:
            [
              ("addend", 5L);
              ("vec_addr", Int64.of_int (vec.H.rp_addr + (core * half * 4)));
              ("out_addr", Int64.of_int (out.H.rp_addr + (core * half * 4)));
              ("n_eles", Int64.of_int half);
            ])
      [ 0; 1 ]
  in
  let cp_jobs =
    List.map
      (fun core ->
        H.send handle ~system:"Memcpy" ~core ~cmd:Kernels.Memcpy.command
          ~args:
            [
              ("src", Int64.of_int (blob.H.rp_addr + (core * 128 * 1024)));
              ("dst", Int64.of_int (blob_dst.H.rp_addr + (core * 128 * 1024)));
              ("bytes", Int64.of_int (128 * 1024));
            ])
      [ 0; 1 ]
  in
  ignore (H.await_all handle (vec_jobs @ cp_jobs));
  let t1 = Desim.Engine.now (H.engine handle) in

  (* verify both functions *)
  let ok_vec = ref true in
  for i = 0 to n - 1 do
    if
      Beethoven.Soc.read_u32 soc (out.H.rp_addr + (i * 4))
      <> Int32.of_int (i + 5)
    then ok_vec := false
  done;
  let ok_cp = ref true in
  for i = 0 to (256 * 1024) - 1 do
    if Beethoven.Soc.read_u8 soc (blob_dst.H.rp_addr + i) <> Char.code 'x'
    then ok_cp := false
  done;
  Printf.printf
    "\nconcurrent run of both systems: vecadd %s, memcpy %s, %.1f us\n"
    (if !ok_vec then "correct" else "WRONG")
    (if !ok_cp then "correct" else "WRONG")
    (float_of_int (t1 - t0) /. 1e6);
  if not (!ok_vec && !ok_cp) then exit 1
