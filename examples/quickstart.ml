(* Quickstart: the paper's Fig. 2/3 walk-through.

   Declares the vector-add accelerator configuration, elaborates it for
   the AWS F1 platform, prints the artifacts Beethoven generates (C++
   bindings, floorplan constraints), then runs the accelerated system end
   to end through the host runtime and checks the result.

     dune exec examples/quickstart.exe *)

let () =
  let platform = Platform.Device.aws_f1 in
  let config = Kernels.Vecadd.config ~n_cores:4 () in
  let design = Beethoven.Elaborate.elaborate config platform in

  print_endline "=== Elaborated design ===";
  print_string (Beethoven.Elaborate.summary design);

  print_endline "\n=== Generated C++ bindings (Fig. 3b) ===";
  print_string (Beethoven.Elaborate.cpp_header design);

  print_endline "=== Placement constraints ===";
  print_string (Beethoven.Elaborate.constraints design);

  print_endline "\n=== Running 4 cores over a 64 KB vector ===";
  let expected, actual, wall_ps =
    Kernels.Vecadd.run ~n_cores:4 ~n_eles:16384 ~platform ()
  in
  let ok = expected = actual in
  Printf.printf "result: %s (%d elements, %.1f us simulated)\n"
    (if ok then "correct" else "MISMATCH")
    (Array.length actual)
    (float_of_int wall_ps /. 1e6);
  if not ok then exit 1
