(* The §III-A microbenchmark as a guided tour: one memcpy, four
   methodologies, with the AXI transaction timeline for each — the
   experiment that motivates Beethoven's memory-protocol abstractions.

     dune exec examples/memcpy_tour.exe [bytes] *)

let () =
  let bytes =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else 64 * 1024
  in
  (* the microbenchmark targets a single DDR controller *)
  let platform =
    { Platform.Device.aws_f1 with Platform.Device.dram = Dram.Config.ddr4_2400 }
  in
  Printf.printf "memcpy of %d bytes on %s\n\n" bytes
    platform.Platform.Device.name;
  List.iter
    (fun impl ->
      let r = Kernels.Memcpy.run ~impl ~bytes ~platform () in
      Printf.printf "%-22s %7.2f GB/s  (%s)\n"
        (Kernels.Memcpy.impl_name impl)
        r.Kernels.Memcpy.bandwidth_gbs
        (if r.Kernels.Memcpy.verified then "contents verified"
         else "VERIFICATION FAILED"))
    Kernels.Memcpy.all_impls;
  print_endline "\n4 KB transaction timelines ('>' issue, '#' data, '|' done):";
  List.iter
    (fun impl ->
      let trace = Axi.Trace.create () in
      ignore (Kernels.Memcpy.run ~trace ~impl ~bytes:4096 ~platform ());
      Printf.printf "\n%s\n%s" (Kernels.Memcpy.impl_name impl)
        (Axi.Trace.render trace ~time_scale:40_000))
    [ Kernels.Memcpy.Hls; Kernels.Memcpy.Beethoven_16beat;
      Kernels.Memcpy.Pure_hdl ]
