(* Needleman-Wunsch, the Fig. 6 kernel where Beethoven wins the most: its
   loop-carried dependence defeats HLS/Spatial unrolling pragmas, while a
   low-effort 1-cell-per-cycle core scales linearly with core count.

     dune exec examples/machsuite_nw.exe [n_cores] *)

module MS = Kernels.Machsuite

let () =
  let platform =
    {
      Platform.Device.aws_f1 with
      Platform.Device.fabric_clock_ps = 8000;
      noc = Noc.Params.default ~clock_ps:8000;
    }
  in
  let max_cores = MS.auto_cores MS.Nw platform in
  let n_cores =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else max_cores
  in
  Printf.printf
    "NW (N=%d) at 125 MHz; floorplanner fits up to %d cores; running %d\n\n"
    (MS.data_size MS.Nw) max_cores n_cores;
  let hls = MS.hls_ops_per_sec MS.Nw in
  Printf.printf "%-24s %12s %10s\n" "" "alignments/s" "vs HLS";
  Printf.printf "%-24s %12.0f %9.2fx\n" "Vitis HLS (model)" hls 1.0;
  Printf.printf "%-24s %12.0f %9.2fx\n" "Spatial (model)"
    (MS.spatial_ops_per_sec MS.Nw)
    (MS.spatial_ops_per_sec MS.Nw /. hls);
  List.iter
    (fun cores ->
      if cores <= max_cores then begin
        let r = MS.run MS.Nw ~rounds:2 ~n_cores:cores ~platform () in
        Printf.printf "%-24s %12.0f %9.2fx  (%s)\n"
          (Printf.sprintf "Beethoven, %d core%s" cores
             (if cores = 1 then "" else "s"))
          r.MS.measured_ops_per_sec
          (r.MS.measured_ops_per_sec /. hls)
          (if r.MS.verified then "verified" else "WRONG OUTPUT")
      end)
    (List.sort_uniq compare [ 1; 4; 16; n_cores ])
