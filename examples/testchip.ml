(* The ASIC test-chip story end to end (§II-D): the ChipKIT platform has
   an on-die RISC-V-class CPU wired straight into the Beethoven fabric.
   Here a real RV32I program — assembled in OCaml, executed by the
   co-simulated CPU — issues RoCC custom instructions that drive the
   vector-add RTL core, while the composer's ASIC backend compiles the
   design's memories onto SRAM macros.

     dune exec examples/testchip.exe *)

module A = Riscv.Asm
module B = Beethoven

let () =
  let platform = Platform.Device.chipkit in
  let design = B.Elaborate.elaborate (Kernels.Vecadd_rtl.config ()) platform in
  Printf.printf "=== %s ===\n" platform.Platform.Device.name;
  print_string (B.Elaborate.summary design);

  (* An RV32 host has 32-bit RoCC payloads, while the RTL core's command
     packs n_eles above bit 32 — on a real test chip Beethoven's generated
     software emits a second beat. This demo does what that glue does: a
     funct-9 wrapper accepts the RV32-friendly layout
     (rs2 = n<<16 | addend) and re-forms the core's single-beat command. *)
  let base = 0x40000 in
  let n = 32 in
  let adapter_cmd_funct = 9 in
  let behaviors _ : B.Soc.behavior =
   fun ctx beats ~respond ->
    let beat = List.hd beats in
    if beat.B.Rocc.funct = adapter_cmd_funct then begin
      (* unpack the RV32-friendly layout and re-issue to the RTL core *)
      let rs1 = Int64.to_int beat.B.Rocc.payload1 in
      let rs2 = Int64.to_int beat.B.Rocc.payload2 in
      let addend = rs2 land 0xFFFF and count = (rs2 lsr 16) land 0xFFFF in
      let rtl_beat =
        {
          beat with
          B.Rocc.funct = 0;
          payload1 = Int64.of_int rs1;
          payload2 =
            Int64.logor (Int64.of_int addend)
              (Int64.shift_left (Int64.of_int count) 32);
        }
      in
      Kernels.Vecadd_rtl.behavior ctx [ rtl_beat ] ~respond
    end
    else Kernels.Vecadd_rtl.behavior ctx beats ~respond
  in
  let soc = B.Soc.create design ~behaviors in
  for i = 0 to n - 1 do
    B.Soc.write_u32 soc (base + (4 * i)) (Int32.of_int (i * 3))
  done;
  let program =
    [
      A.lui 1 (base lsr 12); (* x1 = vector address *)
      A.addi 5 0 n;
      A.slli 5 5 16;
      A.addi 5 5 100; (* x5 = n<<16 | addend=100 *)
      A.custom0 ~funct7:adapter_cmd_funct ~rd:6 ~rs1:1 ~rs2:5 ~xd:true;
      A.ecall;
    ]
  in
  let host = Runtime.Chipkit_host.create soc ~program in
  let halted = ref false in
  Runtime.Chipkit_host.start host ~on_halt:(fun () -> halted := true);
  Desim.Engine.run (B.Soc.engine soc);
  assert !halted;
  let ok = ref true in
  for i = 0 to n - 1 do
    if B.Soc.read_u32 soc (base + (4 * i)) <> Int32.of_int ((i * 3) + 100)
    then ok := false
  done;
  Printf.printf
    "\nRISC-V host: %d instructions retired, %d RoCC command(s); response \
     x6 = %ld; vector %s\n"
    (Runtime.Chipkit_host.instructions_retired host)
    (Runtime.Chipkit_host.commands_issued host)
    (Riscv.Cpu.reg (Runtime.Chipkit_host.cpu host) 6)
    (if !ok then "updated correctly by the RTL core" else "WRONG");
  (* a design with scratchpads exercises the SRAM compiler on this flow *)
  let a3 = B.Elaborate.elaborate (Attention.A3_rtl_core.config ()) platform in
  Printf.printf "\nSRAM compilation (A3 core on the same flow):\n";
  List.iter
    (fun (name, plan) ->
      Printf.printf "  %s -> %s\n" name (Platform.Sram.describe plan))
    a3.B.Elaborate.sram_plans;
  print_string "\n";
  print_string (B.Soc.stats_report soc);
  if not !ok then exit 1
