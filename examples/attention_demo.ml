(* The §III-C case study: the A3 approximate-attention accelerator at
   BERT geometry, composed into a multi-core FPGA design.

     dune exec examples/attention_demo.exe [n_cores] *)

let () =
  let platform = Platform.Device.aws_f1 in
  let n_cores =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else Attention.Accel.auto_cores platform
  in
  Printf.printf "A3 attention: %d cores on %s\n" n_cores
    platform.Platform.Device.name;
  let design =
    Beethoven.Elaborate.elaborate (Attention.Accel.config ~n_cores ()) platform
  in
  print_string (Beethoven.Elaborate.summary design);
  print_newline ();
  print_string (Beethoven.Elaborate.resource_table design);

  let r =
    Attention.Accel.run ~n_queries_per_core:200 ~n_cores ~platform ()
  in
  Printf.printf
    "\n%d queries: %.2f M attention ops/s, outputs %s, max quantization \
     error %.4f\n"
    r.Attention.Accel.n_queries
    (r.Attention.Accel.throughput_ops /. 1e6)
    (if r.Attention.Accel.verified then "bit-exact vs functional model"
     else "MISMATCHED")
    r.Attention.Accel.max_error;

  (* the same configuration retargets to an ASIC flow: the composer
     compiles the scratchpads onto SRAM macros instead *)
  print_endline "\nRetargeted to the ASAP7 ASIC platform:";
  let asic =
    Beethoven.Elaborate.elaborate
      (Attention.Accel.config ~n_cores:1 ())
      Platform.Device.asap7
  in
  List.iter
    (fun (name, plan) ->
      Printf.printf "  %s -> %s\n" name (Platform.Sram.describe plan))
    asic.Beethoven.Elaborate.sram_plans
