(* The RTL developer path end to end: write the Fig. 2 core in the DSL,
   inspect the generated Verilog, simulate it standalone with a VCD dump,
   then run it inside the composed SoC where its adder computes the real
   results.

     dune exec examples/rtl_quickstart.exe *)

let () =
  let circuit = Kernels.Vecadd_rtl.circuit () in

  print_endline "=== Generated Verilog (first lines) ===";
  let v = Hw.Verilog.of_circuit circuit in
  String.split_on_char '\n' v
  |> List.filteri (fun i _ -> i < 14)
  |> List.iter print_endline;
  Printf.printf "... (%d lines total)\n\n" (List.length (String.split_on_char '\n' v));

  print_endline "=== Standalone cycle simulation with VCD ===";
  let sim = Hw.Cyclesim.create circuit in
  let q_out =
    List.find (fun (n, _) -> n = "vec_out_data") (Hw.Circuit.outputs circuit)
    |> snd
  in
  let vcd = Hw.Vcd.create sim ~signals:[ ("vec_out_data", q_out) ] () in
  let set = Hw.Cyclesim.set_input_int sim in
  set "vec_in_req_ready" 1;
  set "vec_out_req_ready" 1;
  set "resp_ready" 1;
  set "vec_out_data_ready" 1;
  set "req_valid" 1;
  Hw.Cyclesim.set_input sim "req_p1" (Bits.of_int ~width:64 0x2000);
  Hw.Cyclesim.set_input sim "req_p2"
    (Bits.of_int64 ~width:64 Int64.(logor 100L (shift_left 3L 32)));
  Hw.Cyclesim.step sim;
  set "req_valid" 0;
  List.iter
    (fun v ->
      set "vec_in_data_valid" 1;
      set "vec_in_data" v;
      Hw.Cyclesim.settle sim;
      Printf.printf "  in=%d  ->  out=%d\n" v
        (Hw.Cyclesim.output_int sim "vec_out_data");
      Hw.Vcd.sample vcd;
      Hw.Cyclesim.step sim)
    [ 1; 2; 3 ];
  let tmp = Filename.temp_file "vecadd" ".vcd" in
  Hw.Vcd.write_file vcd tmp;
  Printf.printf "  waveform written to %s (%d bytes)\n\n" tmp
    (String.length (Hw.Vcd.contents vcd));

  print_endline "=== The same netlist inside the composed SoC ===";
  let ok, resps, wall_ps =
    Kernels.Vecadd_rtl.run ~n_cores:2 ~n_eles:512
      ~platform:Platform.Device.aws_f1 ()
  in
  Printf.printf "2 cores x 512 elements: %s, responses %s, %.1f us simulated\n"
    (if ok then "correct" else "WRONG")
    (String.concat ", " (List.map Int64.to_string resps))
    (float_of_int wall_ps /. 1e6);
  if not ok then exit 1
